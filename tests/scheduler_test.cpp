// Edge-aware frontier scheduler (src/concurrency/work_queue.hpp) and
// its BfsOptions::schedule wiring: plan invariants, steal-domain
// containment, and output equivalence across all policies and engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "concurrency/work_queue.hpp"
#include "core/bfs.hpp"
#include "core/engine_common.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "runtime/obs.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

constexpr SchedulePolicy kAllPolicies[] = {SchedulePolicy::kStatic,
                                           SchedulePolicy::kEdgeWeighted,
                                           SchedulePolicy::kStealing};

/// Drains every chunk one claimant may take; returns the claimed
/// [begin, end) item ranges in claim order.
std::vector<std::pair<std::size_t, std::size_t>> drain(WorkQueue& wq,
                                                       int claimant) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::size_t b = 0;
    std::size_t e = 0;
    while (wq.claim(claimant, b, e) != WorkQueue::Claim::kNone)
        out.emplace_back(b, e);
    return out;
}

/// Asserts `ranges` tile [0, count) exactly once.
void expect_exact_cover(
    std::vector<std::pair<std::size_t, std::size_t>> ranges,
    std::size_t count) {
    std::sort(ranges.begin(), ranges.end());
    std::size_t at = 0;
    for (const auto& [b, e] : ranges) {
        EXPECT_EQ(b, at) << "gap or overlap at item " << at;
        EXPECT_GT(e, b) << "empty chunk at " << b;
        at = e;
    }
    EXPECT_EQ(at, count);
}

TEST(WorkQueue, StaticPlanTilesRangeExactlyOnce) {
    WorkQueue wq(3, {0, 0, 0});
    wq.plan_static(1000, 64);
    EXPECT_EQ(wq.num_chunks(), (1000 + 63) / 64u);
    // Shared cursor: interleave claimants, pool the ranges.
    std::vector<std::pair<std::size_t, std::size_t>> all;
    for (int c = 0; c < 3; ++c)
        for (const auto& r : drain(wq, c)) all.push_back(r);
    expect_exact_cover(std::move(all), 1000);
}

TEST(WorkQueue, WeightedPlanTilesRangeAndBoundsChunkWeight) {
    // Skewed weights: items 0, 100, 200, ... are hundred-fold "hubs".
    const std::size_t count = 500;
    const auto weight = [](std::size_t i) -> std::uint64_t {
        return i % 100 == 0 ? 400 : 4;
    };
    std::uint64_t total = 0;
    std::uint64_t w_max = 0;
    for (std::size_t i = 0; i < count; ++i) {
        total += weight(i);
        w_max = std::max(w_max, weight(i));
    }

    WorkQueue wq(4, {0, 0, 0, 0});
    const std::size_t max_chunks = 4 * 16;
    wq.plan_weighted(count, max_chunks, false, weight);
    ASSERT_GE(wq.num_chunks(), 1u);
    ASSERT_LE(wq.num_chunks(), max_chunks);

    const std::uint64_t ideal = (total + max_chunks - 1) / max_chunks;
    std::vector<std::pair<std::size_t, std::size_t>> all;
    for (std::size_t c = 0; c < wq.num_chunks(); ++c) {
        const auto [b, e] = wq.chunk_bounds(c);
        all.emplace_back(b, e);
        std::uint64_t w = 0;
        for (std::size_t i = b; i < e; ++i) w += weight(i);
        // Greedy cut guarantee: no chunk carries more than one item past
        // the target, so weight <= 2 x max(ideal share, heaviest item).
        EXPECT_LE(w, 2 * std::max(ideal, w_max))
            << "chunk " << c << " over-heavy";
    }
    expect_exact_cover(std::move(all), count);
}

TEST(WorkQueue, StarGraphLeafFrontierSpreadAtMostTwiceIdeal) {
    // The ISSUE's hand-built star: hub 0, leaves 1..n-1. The leaf-level
    // frontier is weight-uniform, so every chunk must stay within 2x the
    // ideal edge share — no straggler chunk.
    const CsrGraph g = test::star_graph(1025);
    std::vector<vertex_t> frontier;
    for (vertex_t v = 1; v < g.num_vertices(); ++v) frontier.push_back(v);

    WorkQueue wq(8, std::vector<int>(8, 0));
    detail::plan_frontier(wq, frontier.data(), frontier.size(), g,
                          SchedulePolicy::kEdgeWeighted, 128);

    const auto weight = [&](std::size_t i) {
        return static_cast<std::uint64_t>(g.degree(frontier[i])) + 1;
    };
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) total += weight(i);
    const double ideal =
        static_cast<double>(total) / static_cast<double>(wq.num_chunks());
    for (std::size_t c = 0; c < wq.num_chunks(); ++c) {
        const auto [b, e] = wq.chunk_bounds(c);
        std::uint64_t w = 0;
        for (std::size_t i = b; i < e; ++i) w += weight(i);
        EXPECT_LE(static_cast<double>(w), 2.0 * ideal) << "chunk " << c;
    }

    // The hub level (frontier = {0}) must still produce a plan that
    // covers the single item.
    const vertex_t hub = 0;
    detail::plan_frontier(wq, &hub, 1, g, SchedulePolicy::kEdgeWeighted, 128);
    EXPECT_EQ(wq.num_chunks(), 1u);
    EXPECT_EQ(wq.chunk_bounds(0), (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(WorkQueue, OwnedPlanStealsOnlyWithinSocket) {
    // Claimants 0,1 on socket 0; 2,3 on socket 1. Claimant 0 drains
    // everything it is allowed to touch: its own range plus claimant 1's
    // — never socket 1's chunks.
    WorkQueue wq(4, {0, 0, 1, 1});
    wq.plan_weighted(400, 8, true, [](std::size_t) { return 1u; });
    ASSERT_EQ(wq.num_chunks(), 8u);

    std::size_t b = 0;
    std::size_t e = 0;
    std::size_t owned = 0;
    std::size_t stolen = 0;
    std::vector<std::pair<std::size_t, std::size_t>> got;
    for (;;) {
        const WorkQueue::Claim cl = wq.claim(0, b, e);
        if (cl == WorkQueue::Claim::kNone) break;
        got.emplace_back(b, e);
        (cl == WorkQueue::Claim::kOwned ? owned : stolen) += 1;
    }
    // Own range first, then the same-socket sibling's.
    const auto [r0b, r0e] = wq.claimant_range(0);
    const auto [r1b, r1e] = wq.claimant_range(1);
    EXPECT_EQ(owned, r0e - r0b);
    EXPECT_EQ(stolen, r1e - r1b);

    // Socket 1's chunks are untouched: claimants 2 and 3 still drain
    // their full ranges, and the four drains tile the items exactly.
    const auto got2 = drain(wq, 2);
    const auto got3 = drain(wq, 3);
    const auto [r2b, r2e] = wq.claimant_range(2);
    const auto [r3b, r3e] = wq.claimant_range(3);
    EXPECT_EQ(got2.size() + got3.size(), (r2e - r2b) + (r3e - r3b));

    std::vector<std::pair<std::size_t, std::size_t>> all = got;
    all.insert(all.end(), got2.begin(), got2.end());
    all.insert(all.end(), got3.begin(), got3.end());
    expect_exact_cover(std::move(all), 400);
}

TEST(WorkQueue, ResetCursorsReplaysTheSamePlan) {
    WorkQueue wq(2, {0, 0});
    wq.plan_weighted(100, 10, true, [](std::size_t) { return 1u; });
    const auto first = drain(wq, 0);   // own + stolen: everything
    EXPECT_TRUE(drain(wq, 1).empty());  // nothing left
    wq.reset_cursors();
    const auto second = drain(wq, 0);
    EXPECT_EQ(first, second);
}

TEST(WorkQueue, EmptyPlanYieldsNoClaims) {
    WorkQueue wq(2, {0, 0});
    for (const bool owned : {false, true}) {
        wq.plan_weighted(0, 16, owned, [](std::size_t) { return 1u; });
        EXPECT_EQ(wq.num_chunks(), 0u);
        EXPECT_TRUE(drain(wq, 0).empty());
        EXPECT_TRUE(drain(wq, 1).empty());
    }
}

TEST(Scheduler, BottomupChunkDerivesFromGraphSize) {
    BfsOptions options;  // bottomup_chunk == 0: derive
    // Small graph: the floor clamps at 64.
    EXPECT_EQ(detail::resolve_bottomup_chunk(options, 1000, 8), 64u);
    // Mid-size: n / (threads * 64).
    EXPECT_EQ(detail::resolve_bottomup_chunk(options, 1 << 20, 8), 2048u);
    // Huge: the ceiling clamps at 4096.
    EXPECT_EQ(detail::resolve_bottomup_chunk(options, 1u << 31, 8), 4096u);
    // Explicit option wins unclamped.
    options.bottomup_chunk = 17;
    EXPECT_EQ(detail::resolve_bottomup_chunk(options, 1 << 20, 8), 17u);
}

// ---------------------------------------------------------------------
// End-to-end: every policy on every parallel engine yields a valid BFS
// tree with the same reachability as the serial reference.
// ---------------------------------------------------------------------

CsrGraph skewed_graph() {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 1 << 13;
    params.seed = 7;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 11);
    return csr_from_edges(edges);
}

TEST(Scheduler, AllPoliciesAllEnginesProduceValidEquivalentTrees) {
    const CsrGraph graphs[] = {skewed_graph(), test::star_graph(257),
                               test::path_graph(200)};
    const BfsEngine engines[] = {BfsEngine::kNaive, BfsEngine::kBitmap,
                                 BfsEngine::kMultiSocket, BfsEngine::kHybrid};
    for (const CsrGraph& g : graphs) {
        const BfsResult reference = bfs(g, 0, {});  // serial
        for (const BfsEngine engine : engines) {
            for (const SchedulePolicy policy : kAllPolicies) {
                BfsOptions options;
                options.engine = engine;
                options.threads = 4;
                options.topology = Topology::emulate(2, 2, 1);
                options.schedule = policy;
                const BfsResult result = bfs(g, 0, options);
                SCOPED_TRACE(to_string(engine) + "/" + to_string(policy));
                EXPECT_TRUE(validate_bfs_tree(g, 0, result).ok);
                test::expect_equivalent(reference, result);
            }
        }
    }
}

TEST(Scheduler, MultisocketPartialBatchesFullyDrained) {
    // Batch size 7 never divides the level frontiers, so every level
    // ships a final partial batch through the channels; the engine's
    // debug drain assert and the tree validation both cover it.
    const CsrGraph g = skewed_graph();
    for (const SchedulePolicy policy : kAllPolicies) {
        BfsOptions options;
        options.engine = BfsEngine::kMultiSocket;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.schedule = policy;
        options.batch_size = 7;
        const BfsResult result = bfs(g, 0, options);
        SCOPED_TRACE(to_string(policy));
        EXPECT_TRUE(validate_bfs_tree(g, 0, result).ok);
        test::expect_equivalent(bfs(g, 0, {}), result);
    }
}

TEST(Scheduler, MsBfsPoliciesAgree) {
    const CsrGraph g = skewed_graph();
    const std::vector<vertex_t> sources = {0, 1, 2, 3};

    // (vertex, level) -> lane mask, per policy. The visitor runs
    // concurrently on distinct vertices; guard with a per-call mutex.
    const auto run = [&](SchedulePolicy policy) {
        std::vector<std::uint64_t> masks(g.num_vertices() * 64, 0);
        std::mutex mu;
        MsBfsOptions options;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.schedule = policy;
        const std::uint32_t levels = multi_source_bfs(
            g, sources,
            [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                std::lock_guard lock(mu);
                masks[static_cast<std::size_t>(v) * 64 + level] |= mask;
            },
            options);
        return std::pair{levels, std::move(masks)};
    };

    const auto [levels_static, masks_static] = run(SchedulePolicy::kStatic);
    for (const SchedulePolicy policy :
         {SchedulePolicy::kEdgeWeighted, SchedulePolicy::kStealing}) {
        const auto [levels, masks] = run(policy);
        SCOPED_TRACE(to_string(policy));
        EXPECT_EQ(levels, levels_static);
        EXPECT_EQ(masks, masks_static);
    }
}

// ---------------------------------------------------------------------
// Counter consistency (needs an SGE_OBS build; the counters are
// compiled to zero otherwise).
// ---------------------------------------------------------------------

TEST(Scheduler, StaticChunksClaimedMatchChunksProduced) {
    if (!obs::compiled_in() || !obs::enabled())
        GTEST_SKIP() << "needs SGE_OBS build with SGE_OBS != 0";
    // Single-socket bitmap engine with a fixed static chunk: the number
    // of chunks the plan produces per level is exactly
    // ceil(frontier / chunk), and every one must be claimed once.
    const CsrGraph g = skewed_graph();
    BfsOptions options;
    options.engine = BfsEngine::kBitmap;
    options.threads = 4;
    options.topology = Topology::emulate(1, 4, 1);
    options.schedule = SchedulePolicy::kStatic;
    options.chunk_size = 64;
    options.collect_stats = true;
    const BfsResult result = bfs(g, 0, options);
    ASSERT_FALSE(result.level_stats.empty());
    for (std::size_t d = 0; d < result.level_stats.size(); ++d) {
        const BfsLevelStats& s = result.level_stats[d];
        EXPECT_EQ(s.chunks_claimed, (s.frontier_size + 63) / 64)
            << "level " << d;
        EXPECT_EQ(s.chunks_stolen, 0u) << "shared cursor never steals";
    }
}

TEST(Scheduler, WeightedAndStealingCounterInvariants) {
    if (!obs::compiled_in() || !obs::enabled())
        GTEST_SKIP() << "needs SGE_OBS build with SGE_OBS != 0";
    const CsrGraph g = skewed_graph();
    for (const SchedulePolicy policy :
         {SchedulePolicy::kEdgeWeighted, SchedulePolicy::kStealing}) {
        BfsOptions options;
        options.engine = BfsEngine::kBitmap;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.schedule = policy;
        options.collect_stats = true;
        const BfsResult result = bfs(g, 0, options);
        SCOPED_TRACE(to_string(policy));
        std::uint64_t claimed = 0;
        std::uint64_t stolen = 0;
        std::uint64_t edges = 0;
        std::uint64_t max_edges = 0;
        for (const BfsLevelStats& s : result.level_stats) {
            // Weighted plans cap chunk count at claimants x 16 per level.
            EXPECT_LE(s.chunks_claimed, 4u * 16u);
            EXPECT_GE(s.chunks_claimed, s.frontier_size > 0 ? 1u : 0u);
            EXPECT_LE(s.chunks_stolen, s.chunks_claimed);
            EXPECT_LE(s.max_thread_edges, s.edges_scanned);
            claimed += s.chunks_claimed;
            stolen += s.chunks_stolen;
            edges += s.edges_scanned;
            max_edges += s.max_thread_edges;
        }
        EXPECT_GT(claimed, 0u);
        EXPECT_GT(max_edges, 0u);
        EXPECT_LE(max_edges, edges);
        if (policy == SchedulePolicy::kEdgeWeighted) {
            EXPECT_EQ(stolen, 0u) << "shared cursor never steals";
        }
    }
}

}  // namespace
}  // namespace sge
