// Figure 8: uniformly random graphs on the 4-socket Nehalem EX —
// (a) rates, (b) scalability, (c) sensitivity to graph size.
//
// Paper scale: up to 64 threads, 0.55-1.3 GE/s, speedups of 14-24x, and
// — thanks to the 24 MB L3 — rates insensitive to vertex count.

#include "fig_rate_suite.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 8: uniformly random graphs, Nehalem EX model", "Fig. 8a/b/c");

    RateSuiteConfig cfg;
    cfg.figure = "Figure 8";
    cfg.slug = "fig08_uniform_ex";
    cfg.family = "uniform";
    cfg.topology = Topology::nehalem_ex();
    cfg.threads = {1, 2, 4, 8, 16, 32, 64};
    cfg.base_vertices = 1 << 16;
    cfg.arities = {8, 16, 32};
    run_rate_suite(cfg);

    std::printf(
        "\npaper's shape: scaling holds across all 4 sockets (speedup 14-24x "
        "at 64\nthreads), slope easing at the 8->16 thread socket crossing; "
        "panel (c) is flat\n(the EX's larger cache absorbs the working set).\n");
    return 0;
}
