#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrency/atomic_bitmap.hpp"

namespace sge {
namespace {

TEST(AtomicBitmap, StartsCleared) {
    AtomicBitmap bm(1000);
    EXPECT_EQ(bm.size_bits(), 1000u);
    for (std::size_t i = 0; i < 1000; ++i) ASSERT_FALSE(bm.test(i));
    EXPECT_EQ(bm.count(), 0u);
}

TEST(AtomicBitmap, TestAndSetReturnsPrevious) {
    AtomicBitmap bm(128);
    EXPECT_FALSE(bm.test_and_set(5));
    EXPECT_TRUE(bm.test(5));
    EXPECT_TRUE(bm.test_and_set(5));
    EXPECT_EQ(bm.count(), 1u);
}

TEST(AtomicBitmap, BitsAreIndependent) {
    AtomicBitmap bm(256);
    // Set bits straddling word boundaries.
    for (const std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 255u})
        bm.test_and_set(i);
    for (std::size_t i = 0; i < 256; ++i) {
        const bool expected = i == 0 || i == 63 || i == 64 || i == 65 ||
                              i == 127 || i == 128 || i == 255;
        ASSERT_EQ(bm.test(i), expected) << "bit " << i;
    }
    EXPECT_EQ(bm.count(), 7u);
}

TEST(AtomicBitmap, ClearAllResets) {
    AtomicBitmap bm(100);
    for (std::size_t i = 0; i < 100; i += 3) bm.test_and_set(i);
    bm.clear_all();
    EXPECT_EQ(bm.count(), 0u);
}

TEST(AtomicBitmap, NonWordMultipleSize) {
    AtomicBitmap bm(67);  // straddles into a second word
    bm.test_and_set(66);
    EXPECT_TRUE(bm.test(66));
    EXPECT_EQ(bm.count(), 1u);
}

TEST(AtomicBitmap, SizeBytesRoundsToWords) {
    EXPECT_EQ(AtomicBitmap(1).size_bytes(), 8u);
    EXPECT_EQ(AtomicBitmap(64).size_bytes(), 8u);
    EXPECT_EQ(AtomicBitmap(65).size_bytes(), 16u);
}

TEST(AtomicBitmap, ExactlyOneWinnerPerBitUnderContention) {
    // The BFS correctness hinge: when many threads race test_and_set on
    // the same vertex, exactly one sees "previously clear".
    constexpr std::size_t kBits = 4096;
    constexpr int kThreads = 8;
    AtomicBitmap bm(kBits);
    std::atomic<std::uint64_t> wins{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            std::uint64_t local = 0;
            for (std::size_t i = 0; i < kBits; ++i)
                if (!bm.test_and_set(i)) ++local;
            wins.fetch_add(local);
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(wins.load(), kBits);
    EXPECT_EQ(bm.count(), kBits);
}

TEST(AtomicBitmap, MoveTransfersState) {
    AtomicBitmap a(64);
    a.test_and_set(10);
    AtomicBitmap b(std::move(a));
    EXPECT_TRUE(b.test(10));
    EXPECT_EQ(b.size_bits(), 64u);
}

}  // namespace
}  // namespace sge
