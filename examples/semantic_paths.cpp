// Semantic-graph path queries — "the relationship between two vertices
// is expressed by the properties of the shortest path between them"
// (Section I). Builds a clustered SSCA#2-style graph and answers
// point-to-point queries two ways:
//
//   1. full parallel BFS + path extraction (when many targets share a
//      source, one traversal amortises over all of them);
//   2. bidirectional st-connectivity (when the query is one-off, it
//      expands a tiny fraction of the graph).

#include <cstdio>
#include <cstdlib>

#include "analytics/shortest_path.hpp"
#include "analytics/st_connectivity.hpp"
#include "core/bfs.hpp"
#include "gen/ssca2.hpp"
#include "graph/builder.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"

int main(int argc, char** argv) {
    using namespace sge;

    Ssca2Params params;
    params.num_vertices = argc > 1 ? static_cast<vertex_t>(std::atol(argv[1]))
                                   : 200000;
    params.max_clique_size = 12;
    params.seed = 11;
    const CsrGraph graph = csr_from_edges(generate_ssca2(params));
    std::printf("SSCA#2-style graph: %u vertices, %llu arcs\n",
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()));

    Xoshiro256 rng(3);
    const auto random_vertex = [&] {
        return static_cast<vertex_t>(rng.next_below(graph.num_vertices()));
    };

    // --- one source, many targets: amortised full BFS ---
    const vertex_t source = random_vertex();
    BfsOptions options;
    options.topology = Topology::nehalem_ep();
    options.threads = 8;
    WallTimer timer;
    const BfsResult result = bfs(graph, source, options);
    std::printf("\nfull BFS from %u: %.3f ms, %llu vertices reached\n", source,
                timer.seconds() * 1e3,
                static_cast<unsigned long long>(result.vertices_visited));
    for (int q = 0; q < 5; ++q) {
        const vertex_t target = random_vertex();
        const auto path = extract_path(result, target);
        if (!path) {
            std::printf("  %u -> %u: unreachable\n", source, target);
            continue;
        }
        std::printf("  %u -> %u: %zu hops via", source, target,
                    path->size() - 1);
        for (const vertex_t v : *path) std::printf(" %u", v);
        std::printf("\n");
    }

    // --- one-off queries: bidirectional search ---
    std::printf("\nbidirectional st-connectivity (effort vs full BFS):\n");
    for (int q = 0; q < 5; ++q) {
        const vertex_t s = random_vertex();
        const vertex_t t = random_vertex();
        timer.reset();
        const StResult st = st_connectivity(graph, s, t);
        const double ms = timer.seconds() * 1e3;
        if (st.connected) {
            std::printf(
                "  %u -> %u: distance %u, expanded %llu vertices (%.2f%% of "
                "graph) in %.3f ms\n",
                s, t, st.distance,
                static_cast<unsigned long long>(st.vertices_expanded),
                100.0 * static_cast<double>(st.vertices_expanded) /
                    graph.num_vertices(),
                ms);
        } else {
            std::printf("  %u -> %u: not connected (%.3f ms)\n", s, t, ms);
        }
    }
    return 0;
}
