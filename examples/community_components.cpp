// Community analysis on a scale-free graph — the paper's introduction
// motivates BFS as the engine behind connected-components / community
// detection on semantic graphs ([4]-[8]).
//
// Generates an R-MAT graph (the paper's power-law workload), finds its
// connected components, then profiles the giant component with a
// parallel BFS: level histogram and effective diameter.

#include <cstdio>
#include <cstdlib>

#include "analytics/connected_components.hpp"
#include "analytics/level_histogram.hpp"
#include "core/bfs.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"

int main(int argc, char** argv) {
    using namespace sge;

    RmatParams params;
    params.scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
    params.num_edges = (1ULL << params.scale) * 8;  // mean arity 16 undirected
    params.seed = 42;

    std::printf("generating R-MAT scale %u (%llu vertices, %llu edges)...\n",
                params.scale, 1ULL << params.scale,
                static_cast<unsigned long long>(params.num_edges));
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 7);  // shuffle hub ids, as GTgraph does
    const CsrGraph graph = csr_from_edges(edges);

    const DegreeStats degrees = compute_degree_stats(graph);
    std::printf("degree distribution: %s\n", degrees.describe().c_str());

    const ComponentsResult cc = connected_components(graph);
    std::printf("components: %u (largest holds %llu of %u vertices)\n",
                cc.num_components(),
                static_cast<unsigned long long>(cc.largest_size()),
                graph.num_vertices());

    // Pick any member of the giant component as the BFS root.
    const std::uint32_t giant = cc.largest_component();
    vertex_t root = 0;
    while (cc.component[root] != giant) ++root;

    BfsOptions options;
    options.topology = Topology::nehalem_ex();
    options.threads = 16;
    const BfsResult result = bfs(graph, root, options);

    std::printf("\nBFS from vertex %u: %llu vertices, %u levels, %.1f Medges/s\n",
                root, static_cast<unsigned long long>(result.vertices_visited),
                result.num_levels, result.edges_per_second() / 1e6);
    std::printf("\nfrontier shape (the scale-free explosion):\n%s",
                render_level_histogram(level_histogram(result)).c_str());
    return 0;
}
