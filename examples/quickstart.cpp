// Quickstart: build a graph, run the multicore BFS, inspect the tree.
//
// This is the smallest end-to-end use of the library's public API:
//   EdgeList -> csr_from_edges -> bfs() -> BfsResult.

#include <cstdio>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"

int main() {
    using namespace sge;

    // A small social-network-ish graph, one undirected edge per add().
    //
    //        0 -- 1 -- 2          7
    //        |    |    |          |
    //        3 -- 4 -- 5 -- 6 --- 8
    EdgeList edges(9);
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(0, 3);
    edges.add(1, 4);
    edges.add(2, 5);
    edges.add(3, 4);
    edges.add(4, 5);
    edges.add(5, 6);
    edges.add(6, 8);
    edges.add(7, 8);

    const CsrGraph graph = csr_from_edges(edges);
    std::printf("graph: %u vertices, %llu arcs (symmetrized)\n",
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()));

    // Run a parallel BFS from vertex 0. The options default to the
    // detected machine topology and the best engine for it; here we pin
    // the paper's dual-socket Nehalem EP model to show the multi-socket
    // path on any host.
    BfsOptions options;
    options.topology = Topology::nehalem_ep();
    options.threads = 8;  // 4 cores per emulated socket

    const BfsResult result = bfs(graph, /*root=*/0, options);

    std::printf("visited %llu vertices in %u levels (%.1f Medges/s)\n",
                static_cast<unsigned long long>(result.vertices_visited),
                result.num_levels, result.edges_per_second() / 1e6);
    for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
        if (result.parent[v] == kInvalidVertex) {
            std::printf("  vertex %u: unreachable\n", v);
        } else {
            std::printf("  vertex %u: level %u, parent %u\n", v,
                        result.level[v], result.parent[v]);
        }
    }

    // Every result can be audited with the Graph500-style validator.
    const ValidationReport report = validate_bfs_tree(graph, 0, result);
    std::printf("validation: %s\n", report.ok ? "OK" : report.error.c_str());
    return report.ok ? 0 : 1;
}
