#!/usr/bin/env python3
"""Validate BENCH_*.json reports emitted by the fig* drivers.

Usage:
    python3 bench/check_bench_json.py FILE_OR_DIR [...]

For each file (or every BENCH_*.json under each directory) the script
checks the sge.bench schema: required top-level fields and their types,
series entry shape (string name, integer params, numeric metrics), and a
few semantic invariants (edges_per_second > 0 on rate series; per-level
counter sanity on Figure 4-style level series). Exits non-zero and
prints one line per violation when anything fails — made for CI.

The schema itself is documented in docs/OBSERVABILITY.md.
"""

import json
import pathlib
import sys

REQUIRED_TOP = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "figure": str,
    "unix_time": int,
    "scale_shift": int,
    "obs_compiled_in": bool,
    "series": list,
}


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def check_entry(errors, path, i, entry):
    where = f"series[{i}]"
    if not isinstance(entry, dict):
        fail(errors, path, f"{where} is not an object")
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(errors, path, f"{where}.name missing or not a string")
        return
    params = entry.get("params")
    if not isinstance(params, dict):
        fail(errors, path, f"{where}.params missing or not an object")
        return
    for k, v in params.items():
        if not isinstance(v, int) or isinstance(v, bool):
            fail(errors, path, f"{where}.params.{k} is not an integer: {v!r}")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(errors, path, f"{where}.metrics missing or empty")
        return
    for k, v in metrics.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            fail(errors, path, f"{where}.metrics.{k} is not a number: {v!r}")
        elif v < 0:
            fail(errors, path, f"{where}.metrics.{k} is negative: {v!r}")

    # Semantic spot checks per series flavour.
    eps = metrics.get("edges_per_second")
    if eps is not None and not eps > 0:
        fail(errors, path, f"{where} ({name}): edges_per_second not positive")
    if "bitmap_checks" in metrics and "atomic_ops" in metrics:
        if metrics["atomic_ops"] > metrics["bitmap_checks"]:
            fail(errors, path,
                 f"{where} ({name}): atomic_ops > bitmap_checks")
    if "atomic_wins" in metrics and "atomic_ops" in metrics:
        if metrics["atomic_ops"] and metrics["atomic_wins"] > metrics["atomic_ops"]:
            fail(errors, path,
                 f"{where} ({name}): atomic_wins > atomic_ops")


def check_file(errors, path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, path, f"unreadable or invalid JSON: {exc}")
        return

    if not isinstance(doc, dict):
        fail(errors, path, "top level is not an object")
        return
    for key, kind in REQUIRED_TOP.items():
        value = doc.get(key)
        if value is None:
            fail(errors, path, f"missing required field '{key}'")
        elif kind is int and isinstance(value, bool):
            fail(errors, path, f"field '{key}' is a bool, expected {kind.__name__}")
        elif not isinstance(value, kind):
            fail(errors, path, f"field '{key}' is not a {kind.__name__}")
    if errors:
        return
    if doc["schema"] != "sge.bench":
        fail(errors, path, f"schema is {doc['schema']!r}, expected 'sge.bench'")
    if doc["schema_version"] != 1:
        fail(errors, path, f"unsupported schema_version {doc['schema_version']}")
    expected_name = f"BENCH_{doc['bench']}.json"
    if pathlib.Path(path).name != expected_name:
        fail(errors, path, f"file name does not match bench slug "
                           f"(expected {expected_name})")
    workload = doc.get("workload")
    if workload is not None:
        if not isinstance(workload, dict) or \
                not isinstance(workload.get("family"), str) or \
                not isinstance(workload.get("base_vertices"), int):
            fail(errors, path, "workload must be {family: str, base_vertices: int}")
    if not doc["series"]:
        fail(errors, path, "series is empty (driver added no entries)")
    for i, entry in enumerate(doc["series"]):
        check_entry(errors, path, i, entry)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    if not files:
        print("check_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        before = len(errors)
        check_file(errors, str(path))
        status = "FAIL" if len(errors) > before else "ok"
        with open(path, encoding="utf-8") as fh:
            try:
                n = len(json.load(fh).get("series", []))
            except (json.JSONDecodeError, AttributeError):
                n = 0
        print(f"  [{status}] {path} ({n} series entries)")
    for message in errors:
        print(f"check_bench_json: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
