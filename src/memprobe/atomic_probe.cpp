#include "memprobe/atomic_probe.hpp"

#include <atomic>
#include <bit>
#include <stdexcept>

#include "concurrency/thread_team.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"

namespace sge {

ProbeResult run_atomic_probe(const AtomicProbeParams& params) {
    if (params.threads < 1)
        throw std::invalid_argument("run_atomic_probe: threads must be >= 1");

    // Power-of-two slot count so the index stream is a simple mask.
    const std::size_t raw_slots = params.buffer_bytes / sizeof(std::uint64_t);
    const std::size_t slots = std::bit_floor(std::max<std::size_t>(raw_slots, 2));
    const std::size_t mask = slots - 1;

    AlignedBuffer<std::atomic<std::uint64_t>> buffer(slots);
    for (std::size_t i = 0; i < slots; ++i)
        buffer[i].store(i, std::memory_order_relaxed);

    ThreadTeam team(params.threads,
                    params.topology ? *params.topology : Topology::detect());

    std::atomic<std::uint64_t> checksum{0};
    ProbeResult result;

    WallTimer timer;
    team.run([&](int tid) {
        Xoshiro256 rng(params.seed ^ (0x9e3779b97f4a7c15ULL * (tid + 1)));
        std::uint64_t local = 0;
        if (params.mode == AtomicProbeParams::Mode::kFetchAdd) {
            for (std::uint64_t i = 0; i < params.ops_per_thread; ++i)
                local ^= buffer[rng.next() & mask].fetch_add(
                    1, std::memory_order_relaxed);
        } else {
            for (std::uint64_t i = 0; i < params.ops_per_thread; ++i)
                local ^= buffer[rng.next() & mask].load(std::memory_order_relaxed);
        }
        checksum.fetch_xor(local, std::memory_order_relaxed);
    });
    result.seconds = timer.seconds();

    result.operations =
        static_cast<std::uint64_t>(params.threads) * params.ops_per_thread;
    result.checksum = checksum.load(std::memory_order_relaxed);
    return result;
}

}  // namespace sge
