#pragma once

#include <cstdint>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"

namespace sge {

/// Options for the distributed-memory-style BFS.
struct DistBfsOptions {
    /// Number of emulated ranks (processes). Each rank is one thread
    /// with *private* state; ranks never touch each other's memory.
    int ranks = 4;
    /// Tuple batch per channel send (amortizes the endpoint locks, the
    /// same batching optimization as Algorithm 3).
    std::size_t batch_size = 64;
    /// FastForward ring entries per rank inbox.
    std::size_t channel_capacity = 1 << 15;
    bool compute_levels = true;
    bool collect_stats = false;
};

/// 1-D distributed BFS — the paper's stated future work ("extend the
/// algorithmic design ... to distributed-memory machines ... with
/// lightweight PGAS programming languages"), emulated in-process so the
/// algorithm is testable without MPI:
///
///  * vertices are block-partitioned over R ranks; each rank *copies*
///    its rows into a private CSR slice and owns private parent, level
///    and visited arrays indexed by local id — there is no shared
///    algorithmic state whatsoever, unlike Algorithm 3's shared bitmap;
///  * the only communication is (child, parent) tuples through the
///    inter-rank channels (the same ticket-locked FastForward fabric
///    Algorithm 3 uses between sockets) plus a barrier + counter that
///    stands in for MPI_Allreduce on the frontier size;
///  * each BFS level is one BSP superstep: scan local frontier, send
///    remote discoveries, barrier, drain inbox, barrier, allreduce.
///
/// This is the Yoo et al. BlueGene/L structure [11][20] the paper
/// compares against, expressed with the paper's own channel machinery.
/// Results are gathered into an ordinary BfsResult; remote_tuples in
/// the level stats counts the communication volume.
BfsResult distributed_bfs(const CsrGraph& g, vertex_t root,
                          const DistBfsOptions& options = {});

}  // namespace sge
