#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

/// FastForward single-producer/single-consumer lock-free ring
/// (Giacomoni, Moseley, Vachharajani — PPoPP'08, the paper's reference
/// [23]).
///
/// The distinguishing trick versus a Lamport queue: there are no shared
/// head/tail indices at all. Each slot doubles as its own full/empty
/// flag — a slot holding `Empty` is free, anything else is a value. The
/// producer only reads/writes its own head cursor (plain, unshared) and
/// the slot; the consumer likewise. Producer and consumer therefore make
/// independent progress and the only coherence traffic is the cache line
/// carrying the payload itself, which is exactly the transfer you cannot
/// avoid. This is what lets the paper's inter-socket channels run at
/// ~20 ns per enqueue/dequeue.
///
/// `Empty` must be a value that is never pushed; for packed (child,
/// parent) vertex tuples the all-ones pattern is reserved.
template <typename T, T Empty>
class SpscRing {
    static_assert(std::atomic<T>::is_always_lock_free,
                  "slot type must be natively atomic for FastForward to work");

  public:
    /// `capacity` is rounded up to a power of two (minimum 2).
    explicit SpscRing(std::size_t capacity)
        : mask_(std::bit_ceil(std::max<std::size_t>(capacity, 2)) - 1),
          slots_(mask_ + 1) {
        for (std::size_t i = 0; i <= mask_; ++i)
            slots_[i].store(Empty, std::memory_order_relaxed);
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /// Producer side. Returns false when the ring is full.
    bool try_push(T value) noexcept {
        std::atomic<T>& slot = slots_[head_.value & mask_];
        if (slot.load(std::memory_order_acquire) != Empty) return false;
        slot.store(value, std::memory_order_release);
        ++head_.value;
        return true;
    }

    /// Consumer side. Returns nullopt when the ring is empty.
    std::optional<T> try_pop() noexcept {
        std::atomic<T>& slot = slots_[tail_.value & mask_];
        const T value = slot.load(std::memory_order_acquire);
        if (value == Empty) return std::nullopt;
        slot.store(Empty, std::memory_order_release);
        ++tail_.value;
        return value;
    }

    /// Consumer-side bulk pop; returns the number of values written to
    /// `out` (up to `max`). One acquire fence per element, same as
    /// try_pop, but saves the call overhead in the BFS drain loop.
    std::size_t pop_bulk(T* out, std::size_t max) noexcept {
        std::size_t n = 0;
        while (n < max) {
            std::atomic<T>& slot = slots_[tail_.value & mask_];
            const T value = slot.load(std::memory_order_acquire);
            if (value == Empty) break;
            slot.store(Empty, std::memory_order_release);
            ++tail_.value;
            out[n++] = value;
        }
        return n;
    }

    /// True when the consumer would currently find nothing. Exact only
    /// while the producer is quiescent (how the BFS uses it: after a
    /// barrier).
    [[nodiscard]] bool empty() const noexcept {
        return slots_[tail_.value & mask_].load(std::memory_order_acquire) == Empty;
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  private:
    std::size_t mask_;
    AlignedBuffer<std::atomic<T>> slots_;
    // Cursors are private to their side; padded so the producer's head
    // and consumer's tail never share a line.
    CachePadded<std::size_t> head_{};  // producer-owned
    CachePadded<std::size_t> tail_{};  // consumer-owned
};

}  // namespace sge
