#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace sge {

/// Mutable adjacency structure for streaming workloads — the paper's
/// conclusion points the design at "streaming and irregular
/// applications"; this is the ingestion side: edges arrive over time,
/// queries (BFS, analytics) run against the current state.
///
/// Representation: one growable vector per vertex with amortised-O(1)
/// undirected insertion. Not thread-safe for concurrent mutation (a
/// stream has one writer); snapshot() produces an immutable CsrGraph
/// for the parallel engines, which is the intended query path for
/// anything heavier than the incremental BFS maintenance in
/// stream/incremental_bfs.hpp.
class DynamicGraph {
  public:
    explicit DynamicGraph(vertex_t num_vertices)
        : adjacency_(num_vertices) {}

    /// Builds from an existing static graph (arcs copied as-is).
    explicit DynamicGraph(const CsrGraph& g) : adjacency_(g.num_vertices()) {
        for (vertex_t v = 0; v < g.num_vertices(); ++v) {
            const auto adj = g.neighbors(v);
            adjacency_[v].assign(adj.begin(), adj.end());
            num_arcs_ += adj.size();
        }
    }

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return static_cast<vertex_t>(adjacency_.size());
    }
    [[nodiscard]] std::uint64_t num_arcs() const noexcept { return num_arcs_; }

    /// Appends a new isolated vertex; returns its id.
    vertex_t add_vertex() {
        adjacency_.emplace_back();
        return static_cast<vertex_t>(adjacency_.size() - 1);
    }

    /// Inserts the undirected edge {u, v} (two arcs). No deduplication —
    /// streams may carry repeats; has_edge/degree see multiplicity.
    /// Throws std::out_of_range for bad ids.
    void add_edge(vertex_t u, vertex_t v) {
        check(u);
        check(v);
        adjacency_[u].push_back(v);
        if (u != v) adjacency_[v].push_back(u);
        num_arcs_ += (u == v) ? 1 : 2;
    }

    /// Removes one occurrence of the undirected edge {u, v}; returns
    /// false when absent.
    bool remove_edge(vertex_t u, vertex_t v) {
        check(u);
        check(v);
        if (!erase_one(u, v)) return false;
        if (u != v) erase_one(v, u);
        num_arcs_ -= (u == v) ? 1 : 2;
        return true;
    }

    [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
        check(v);
        return adjacency_[v];
    }

    [[nodiscard]] std::uint64_t degree(vertex_t v) const {
        check(v);
        return adjacency_[v].size();
    }

    [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const {
        check(u);
        check(v);
        for (const vertex_t w : adjacency_[u])
            if (w == v) return true;
        return false;
    }

    /// Immutable CSR snapshot of the current state (sorted adjacency).
    [[nodiscard]] CsrGraph snapshot() const;

  private:
    void check(vertex_t v) const {
        if (v >= adjacency_.size())
            throw std::out_of_range("DynamicGraph: vertex out of range");
    }

    bool erase_one(vertex_t u, vertex_t v) {
        auto& adj = adjacency_[u];
        for (std::size_t i = 0; i < adj.size(); ++i) {
            if (adj[i] == v) {
                adj[i] = adj.back();
                adj.pop_back();
                return true;
            }
        }
        return false;
    }

    std::vector<std::vector<vertex_t>> adjacency_;
    std::uint64_t num_arcs_ = 0;
};

}  // namespace sge
