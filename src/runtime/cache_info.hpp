#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sge {

/// One level of a CPU's cache hierarchy as reported by sysfs.
struct CacheLevel {
    int level = 0;              ///< 1, 2, 3, ...
    std::string type;           ///< "Data", "Instruction", "Unified"
    std::size_t size_bytes = 0;
    std::size_t line_bytes = 0;
};

/// Reads /sys/devices/system/cpu/cpu<cpu>/cache/index*/ (Linux). Returns
/// an empty vector when the hierarchy is not exposed (some containers,
/// non-Linux). The working-set analysis of Figure 2 and Table I's cache
/// columns use this to annotate results with the *actual* hierarchy of
/// the reproduction host next to the paper's Nehalem numbers.
std::vector<CacheLevel> detect_caches(int cpu = 0);

/// "L1 Data 32 KB / L2 Unified 1 MB / L3 Unified 32 MB" style summary;
/// "unknown" when empty.
std::string describe_caches(const std::vector<CacheLevel>& caches);

}  // namespace sge
