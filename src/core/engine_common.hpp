#pragma once

// Internal shared machinery for the BFS engines. Not part of the public
// API surface; include only from src/core/*.cpp and tests.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/spin_barrier.hpp"
#include "core/bfs.hpp"
#include "runtime/env.hpp"
#include "runtime/stats.hpp"

namespace sge::detail {

/// Effective watchdog deadline for a run: the per-run option wins;
/// otherwise the process-wide SGE_BFS_WATCHDOG_MS default applies
/// (0/unset = disabled).
inline double resolve_watchdog_seconds(const BfsOptions& options) {
    if (options.watchdog_seconds > 0.0) return options.watchdog_seconds;
    const std::int64_t ms = env_int("SGE_BFS_WATCHDOG_MS", 0);
    return ms > 0 ? static_cast<double>(ms) / 1000.0 : 0.0;
}

/// Per-run watchdog: converts a stalled level step into a diagnostic
/// error instead of a hang.
///
/// Armed with a deadline, it sleeps on a condition variable; if the run
/// finishes first, disarm() (or the destructor) stops it for free. If
/// the deadline passes, it snapshots the engine-supplied diagnostics
/// and aborts the run's barrier, which releases every worker with
/// `arrive_and_wait() == false`; the engine then observes fired() and
/// throws BfsDeadlineError. The diagnose callback runs concurrently
/// with the workers, so it must only read atomic state (queue cursors,
/// channel counters) — the snapshot is momentary by design.
class LevelWatchdog {
  public:
    LevelWatchdog(double deadline_seconds, SpinBarrier& barrier,
                  std::function<std::string()> diagnose)
        : deadline_seconds_(deadline_seconds),
          barrier_(&barrier),
          diagnose_(std::move(diagnose)) {
        if (deadline_seconds_ > 0.0)
            thread_ = std::thread([this] { watch(); });
    }

    LevelWatchdog(const LevelWatchdog&) = delete;
    LevelWatchdog& operator=(const LevelWatchdog&) = delete;

    ~LevelWatchdog() { disarm(); }

    /// Stops the watchdog and joins its thread. Idempotent. After
    /// disarm() returns, fired()/report() are stable.
    void disarm() noexcept {
        {
            std::lock_guard guard(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    /// True when the deadline expired and the barrier was aborted.
    /// Reliable only after disarm().
    [[nodiscard]] bool fired() const noexcept { return fired_; }

    /// The diagnostic captured at expiry (empty unless fired()).
    [[nodiscard]] const std::string& report() const noexcept { return report_; }

  private:
    void watch() {
        std::unique_lock lock(mutex_);
        const auto deadline = std::chrono::duration<double>(deadline_seconds_);
        if (cv_.wait_for(lock, deadline, [this] { return stop_; })) return;
        fired_ = true;
        try {
            report_ = diagnose_ ? diagnose_() : std::string();
        } catch (...) {
            report_ = "(diagnostics unavailable)";
        }
        runtime_warnings().watchdog_fires.fetch_add(1,
                                                    std::memory_order_relaxed);
        barrier_->abort();
    }

    const double deadline_seconds_;
    SpinBarrier* const barrier_;
    const std::function<std::string()> diagnose_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    bool stop_ = false;
    bool fired_ = false;      // written by the watchdog thread only;
    std::string report_;      // read after disarm() joins it
};

/// Shared epilogue: disarm the watchdog and convert a firing into the
/// documented error. Call immediately after team.run() returns.
inline void finish_watchdog(LevelWatchdog& watchdog, const char* engine) {
    watchdog.disarm();
    if (watchdog.fired())
        throw BfsDeadlineError(std::string(engine) +
                               ": watchdog deadline exceeded; " +
                               watchdog.report());
}

/// Shared per-level accumulation slot. Workers fetch_add their local
/// counters into it once per level; the engine copies the totals into
/// BfsResult::level_stats after the run.
struct LevelAccum {
    std::uint64_t frontier_size = 0;  // written by thread 0 only
    double seconds = 0.0;             // written by thread 0 only
    std::atomic<std::uint64_t> edges_scanned{0};
    std::atomic<std::uint64_t> bitmap_checks{0};
    std::atomic<std::uint64_t> atomic_ops{0};
    std::atomic<std::uint64_t> remote_tuples{0};

    LevelAccum() = default;
    // Copyable so a std::vector of slots can grow. Growth happens only
    // on thread 0 between barriers, when no worker touches the slots.
    LevelAccum(const LevelAccum& o)
        : frontier_size(o.frontier_size),
          seconds(o.seconds),
          edges_scanned(o.edges_scanned.load(std::memory_order_relaxed)),
          bitmap_checks(o.bitmap_checks.load(std::memory_order_relaxed)),
          atomic_ops(o.atomic_ops.load(std::memory_order_relaxed)),
          remote_tuples(o.remote_tuples.load(std::memory_order_relaxed)) {}
    LevelAccum& operator=(const LevelAccum&) = delete;
};

/// Worker-local counters, flushed into a LevelAccum once per level so
/// the hot loop touches no shared cache lines.
struct ThreadCounters {
    std::uint64_t edges_scanned = 0;
    std::uint64_t bitmap_checks = 0;
    std::uint64_t atomic_ops = 0;
    std::uint64_t remote_tuples = 0;

    void flush_into(LevelAccum& slot) noexcept {
        slot.edges_scanned.fetch_add(edges_scanned, std::memory_order_relaxed);
        slot.bitmap_checks.fetch_add(bitmap_checks, std::memory_order_relaxed);
        slot.atomic_ops.fetch_add(atomic_ops, std::memory_order_relaxed);
        slot.remote_tuples.fetch_add(remote_tuples, std::memory_order_relaxed);
        *this = ThreadCounters{};
    }
};

inline void check_root(const CsrGraph& g, vertex_t root) {
    if (root >= g.num_vertices())
        throw std::out_of_range("bfs: root vertex out of range");
}

/// Copies accumulated per-level slots into the result (dropping the
/// trailing slot engines pre-create for a level that never ran).
inline void copy_level_stats(BfsResult& result,
                             const std::vector<LevelAccum>& slots,
                             std::uint32_t levels_run) {
    result.level_stats.reserve(levels_run);
    for (std::uint32_t d = 0; d < levels_run && d < slots.size(); ++d) {
        const LevelAccum& a = slots[d];
        result.level_stats.push_back(BfsLevelStats{
            a.frontier_size,
            a.edges_scanned.load(std::memory_order_relaxed),
            a.bitmap_checks.load(std::memory_order_relaxed),
            a.atomic_ops.load(std::memory_order_relaxed),
            a.remote_tuples.load(std::memory_order_relaxed),
            a.seconds,
        });
    }
}

/// Splits [0, n) into `parts` near-equal chunks; returns chunk `index`.
inline std::pair<std::size_t, std::size_t> split_range(std::size_t n, int parts,
                                                       int index) noexcept {
    const std::size_t base = n / static_cast<std::size_t>(parts);
    const std::size_t extra = n % static_cast<std::size_t>(parts);
    const auto i = static_cast<std::size_t>(index);
    const std::size_t begin = i * base + (i < extra ? i : extra);
    const std::size_t size = base + (i < extra ? 1 : 0);
    return {begin, begin + size};
}

}  // namespace sge::detail
