#pragma once

// Bounded admission queue with batching pops — the backpressure and
// coalescing substrate of GraphService.
//
// Producers (submit) never block: try_push() returns false when the
// queue is at capacity or closed, and the service sheds the request
// with an explicit Outcome::kShed instead of queueing unboundedly —
// under overload the caller learns immediately, latency stays bounded,
// and memory stays flat.
//
// Consumers (workers) pop in *batches*: pop_batch() blocks for the
// first request, then keeps gathering until either `max` requests are
// in hand or a flush window has elapsed — the buffer-then-flush-on-
// capacity-or-deadline idiom of Grappa's RDMAAggregator, which is what
// lets concurrent single-source queries coalesce into one MS-BFS wave.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "service/request.hpp"

namespace sge::service {

class AdmissionQueue {
  public:
    using Item = std::shared_ptr<PendingQuery>;

    explicit AdmissionQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity) {}

    AdmissionQueue(const AdmissionQueue&) = delete;
    AdmissionQueue& operator=(const AdmissionQueue&) = delete;

    /// Non-blocking admission. False when the queue is full or closed —
    /// the caller sheds the request.
    [[nodiscard]] bool try_push(Item item) {
        {
            std::lock_guard guard(mutex_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /// Blocks until at least one request is available (or the queue is
    /// closed and empty — returns 0, the worker-exit signal). Then
    /// gathers into `out` until `max` requests are in hand or `window`
    /// has elapsed since the first one. A closed queue flushes what is
    /// left immediately (shutdown drains promptly).
    ///
    /// `in_flight`, when given, is incremented while the queue lock is
    /// still held whenever the pop takes at least one item — so a
    /// shutdown drain observing "queue empty and in_flight == 0" can
    /// never miss a batch in the window between removal and processing.
    /// The worker decrements it after resolving the batch.
    std::size_t pop_batch(std::vector<Item>& out, std::size_t max,
                          std::chrono::nanoseconds window,
                          std::atomic<int>* in_flight = nullptr) {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return 0;  // closed and drained

        const auto flush_at = PendingQuery::clock::now() + window;
        std::size_t taken = 0;
        for (;;) {
            while (!items_.empty() && taken < max) {
                out.push_back(std::move(items_.front()));
                items_.pop_front();
                ++taken;
            }
            if (taken >= max || closed_ || window.count() <= 0) break;
            if (!cv_.wait_until(lock, flush_at, [&] {
                    return closed_ || !items_.empty();
                }))
                break;  // window elapsed: flush what we have
        }
        if (taken > 0 && in_flight != nullptr)
            in_flight->fetch_add(1, std::memory_order_acq_rel);
        return taken;
    }

    /// Non-blocking sweep of everything still queued (the shutdown
    /// drain's last pass, after the workers have exited).
    std::size_t drain(std::vector<Item>& out) {
        std::lock_guard guard(mutex_);
        const std::size_t taken = items_.size();
        for (Item& item : items_) out.push_back(std::move(item));
        items_.clear();
        return taken;
    }

    /// Closes admission: try_push() fails from now on, blocked
    /// pop_batch() calls wake, and workers exit once the backlog is
    /// drained. Idempotent.
    void close() {
        {
            std::lock_guard guard(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard guard(mutex_);
        return items_.size();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard guard(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Item> items_;
    bool closed_ = false;
};

}  // namespace sge::service
