#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

// Deterministic fault injection.
//
// A handful of *named sites* are compiled into failure-prone spots of
// the library (aligned allocation, thread pinning, channel push/pop,
// barrier arrival). Each site is a single inline check of one relaxed
// atomic mask — unmeasurable when nothing is armed — and can be armed
// either programmatically (tests) or from the environment:
//
//   SGE_FAULT_INJECTION=1            master switch for env-driven arming
//   SGE_FAULT_SEED=<u64>             PRNG seed (default 42)
//   SGE_FAULT_ALLOC=p=0.001          fire with probability per hit, or
//   SGE_FAULT_BARRIER=nth=17         fire exactly once, on the 17th hit
//   (likewise SGE_FAULT_PIN, SGE_FAULT_CHANNEL_PUSH,
//    SGE_FAULT_CHANNEL_POP, SGE_FAULT_SERVICE_SUBMIT,
//    SGE_FAULT_SERVICE_FLUSH, SGE_FAULT_SERVICE_WORKER,
//    SGE_FAULT_PAGED_READ)
//
// Building with -DSGE_FAULT_INJECTION=OFF removes the sites entirely:
// should_fire() becomes a constexpr `false` and every call compiles
// away. See docs/ROBUSTNESS.md for site semantics.

namespace sge::fault {

/// Named injection sites. Keep in sync with site_name()/site_env_name().
enum class Site : unsigned {
    kAlloc = 0,     ///< AlignedBuffer allocation -> std::bad_alloc
    kPin,           ///< pin_current_thread -> reported failure
    kChannelPush,   ///< Channel::push_batch -> forced ring-full spill
    kChannelPop,    ///< Channel::pop_batch -> drain throttled to 1 item
    kBarrier,       ///< SpinBarrier::arrive_and_wait -> FaultInjected
    kServiceSubmit, ///< GraphService::submit admission path -> FaultInjected
    kServiceFlush,  ///< service batcher flush (wave assembly) -> FaultInjected
    kServiceWorker, ///< service worker dispatch loop -> FaultInjected
    kPagedRead,     ///< paged-graph stripe open/read -> PagedIoError / skip
    kSiteCount,
};

inline constexpr unsigned kSiteCount = static_cast<unsigned>(Site::kSiteCount);

/// How an armed site decides to fire. Exactly one mode is active:
/// `nth > 0` fires once, on the Nth hit of the site (deterministic
/// regardless of thread interleaving); otherwise each hit fires with
/// `probability` (seeded xoshiro, reproducible for a fixed seed and
/// fixed hit order).
struct Trigger {
    double probability = 0.0;
    std::uint64_t nth = 0;
};

/// Thrown by sites whose failure mode is an exception (barrier arrival;
/// also available to future sites). Alloc fires std::bad_alloc instead,
/// matching the failure it simulates.
class FaultInjected : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// True when the library was built with fault sites compiled in.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if defined(SGE_FAULT_INJECTION_ENABLED) && SGE_FAULT_INJECTION_ENABLED
    return true;
#else
    return false;
#endif
}

/// Short lowercase site name ("alloc", "pin", "channel_push", ...).
[[nodiscard]] const char* site_name(Site s) noexcept;

/// Arms `site` with `trigger` (resets the site's hit/fired counters).
/// No-op when !compiled_in().
void arm(Site site, Trigger trigger) noexcept;

/// Disarms one site / all sites. Counters are preserved until re-armed.
void disarm(Site site) noexcept;
void disarm_all() noexcept;

/// Reseeds the probability PRNG (also re-applied by disarm_all()).
void reseed(std::uint64_t seed) noexcept;

/// The trigger a site is currently armed with, if any.
[[nodiscard]] std::optional<Trigger> armed_trigger(Site site) noexcept;

/// Times the site was evaluated / actually fired since it was last
/// armed.
[[nodiscard]] std::uint64_t hits(Site site) noexcept;
[[nodiscard]] std::uint64_t fired(Site site) noexcept;

/// (Re)reads the SGE_FAULT_* environment. Called once automatically at
/// process start; exposed so tests can exercise the parsing. Does
/// nothing unless SGE_FAULT_INJECTION is truthy.
void load_from_env();

#if defined(SGE_FAULT_INJECTION_ENABLED) && SGE_FAULT_INJECTION_ENABLED

namespace detail {
/// Bitmask of armed sites; the only thing the fast path reads.
extern std::atomic<unsigned> g_armed_mask;
/// Cold path: counts the hit and applies the trigger.
[[nodiscard]] bool fire_slow(Site site) noexcept;
}  // namespace detail

/// Hot-path check: one relaxed load and a predicted-not-taken branch
/// when the site is not armed.
[[nodiscard]] inline bool should_fire(Site site) noexcept {
    const unsigned mask = detail::g_armed_mask.load(std::memory_order_relaxed);
    if ((mask & (1U << static_cast<unsigned>(site))) == 0) [[likely]]
        return false;
    return detail::fire_slow(site);
}

#else

[[nodiscard]] constexpr bool should_fire(Site) noexcept { return false; }

#endif

/// Convenience: throws FaultInjected("<site> fault injected") when the
/// site fires.
inline void maybe_throw(Site site) {
    if (should_fire(site))
        throw FaultInjected(std::string(site_name(site)) + " fault injected");
}

}  // namespace sge::fault
