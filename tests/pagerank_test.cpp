#include <gtest/gtest.h>

#include <numeric>

#include "analytics/pagerank.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

double total(const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRank, ScoresSumToOne) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PageRankResult r = pagerank(g);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(total(r.score), 1.0, 1e-9);
    for (const double s : r.score) ASSERT_GT(s, 0.0);
}

TEST(PageRank, RegularGraphIsUniform) {
    // On a cycle every vertex is symmetric: score = 1/n exactly.
    const CsrGraph g = test::cycle_graph(40);
    const PageRankResult r = pagerank(g);
    EXPECT_TRUE(r.converged);
    for (const double s : r.score) ASSERT_NEAR(s, 1.0 / 40, 1e-9);
}

TEST(PageRank, StarCenterDominates) {
    const CsrGraph g = test::star_graph(50);
    const PageRankResult r = pagerank(g);
    for (vertex_t v = 1; v < 50; ++v) {
        ASSERT_GT(r.score[0], 5.0 * r.score[v]);
        ASSERT_NEAR(r.score[v], r.score[1], 1e-12);  // leaves symmetric
    }
}

TEST(PageRank, DanglingMassRedistributed) {
    // Path 0-1 plus two isolated vertices: total mass must stay 1.
    EdgeList edges(4);
    edges.add(0, 1);
    const CsrGraph g = csr_from_edges(edges);
    const PageRankResult r = pagerank(g);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(total(r.score), 1.0, 1e-9);
    EXPECT_NEAR(r.score[2], r.score[3], 1e-12);
    EXPECT_GT(r.score[0], r.score[2]);  // linked beats isolated
}

TEST(PageRank, ParallelMatchesSerialExactly) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PageRankResult serial = pagerank(g);

    PageRankOptions opts;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    const PageRankResult parallel = pagerank(g, opts);
    ASSERT_EQ(serial.iterations, parallel.iterations);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_NEAR(serial.score[v], parallel.score[v], 1e-12) << v;
}

TEST(PageRank, IterationCapRespected) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    PageRankOptions opts;
    opts.max_iterations = 3;
    opts.tolerance = 0.0;  // unreachable
    const PageRankResult r = pagerank(g, opts);
    EXPECT_EQ(r.iterations, 3);
    EXPECT_FALSE(r.converged);
}

TEST(PageRank, RejectsBadDamping) {
    const CsrGraph g = test::path_graph(3);
    PageRankOptions opts;
    opts.damping = 1.0;
    EXPECT_THROW(pagerank(g, opts), std::invalid_argument);
    opts.damping = -0.1;
    EXPECT_THROW(pagerank(g, opts), std::invalid_argument);
}

TEST(PageRank, EmptyGraph) {
    const PageRankResult r = pagerank(csr_from_edges(EdgeList(0)));
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.score.empty());
}

TEST(PageRank, ZeroDampingIsUniform) {
    const CsrGraph g = test::star_graph(10);
    PageRankOptions opts;
    opts.damping = 0.0;
    const PageRankResult r = pagerank(g, opts);
    for (const double s : r.score) ASSERT_NEAR(s, 0.1, 1e-12);
}

}  // namespace
}  // namespace sge
