// google-benchmark microbenchmarks for the graph substrate: generator
// throughput, CSR build cost, and the serial BFS baseline every speedup
// in the paper is measured against.

#include <benchmark/benchmark.h>

#include "core/bfs.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"

namespace {

void BM_GenerateUniform(benchmark::State& state) {
    sge::UniformParams params;
    params.num_vertices = static_cast<sge::vertex_t>(state.range(0));
    params.degree = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sge::generate_uniform(params));
        ++params.seed;
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_GenerateUniform)->Arg(1 << 14)->Arg(1 << 17);

void BM_GenerateRmat(benchmark::State& state) {
    sge::RmatParams params;
    params.scale = static_cast<std::uint32_t>(state.range(0));
    params.num_edges = 8ULL << params.scale;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sge::generate_rmat(params));
        ++params.seed;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(params.num_edges));
}
BENCHMARK(BM_GenerateRmat)->Arg(14)->Arg(17);

void BM_BuildCsr(benchmark::State& state) {
    sge::UniformParams params;
    params.num_vertices = static_cast<sge::vertex_t>(state.range(0));
    params.degree = 8;
    const sge::EdgeList edges = sge::generate_uniform(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(sge::csr_from_edges(edges));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(edges.num_edges()));
}
BENCHMARK(BM_BuildCsr)->Arg(1 << 14)->Arg(1 << 17);

void BM_DegreeStats(benchmark::State& state) {
    sge::UniformParams params;
    params.num_vertices = 1 << 17;
    params.degree = 8;
    const sge::CsrGraph g = sge::csr_from_edges(sge::generate_uniform(params));
    for (auto _ : state)
        benchmark::DoNotOptimize(sge::compute_degree_stats(g));
}
BENCHMARK(BM_DegreeStats);

void BM_SerialBfs(benchmark::State& state) {
    sge::UniformParams params;
    params.num_vertices = static_cast<sge::vertex_t>(state.range(0));
    params.degree = 8;
    const sge::CsrGraph g = sge::csr_from_edges(sge::generate_uniform(params));
    sge::BfsOptions options;
    options.engine = sge::BfsEngine::kSerial;
    std::int64_t edges = 0;
    for (auto _ : state) {
        const sge::BfsResult r = sge::bfs(g, 0, options);
        edges += static_cast<std::int64_t>(r.edges_traversed);
        benchmark::DoNotOptimize(r.parent.data());
    }
    state.SetItemsProcessed(edges);
}
BENCHMARK(BM_SerialBfs)->Arg(1 << 14)->Arg(1 << 17);

void BM_HasEdge(benchmark::State& state) {
    sge::RmatParams params;
    params.scale = 16;
    params.num_edges = 1 << 19;
    const sge::CsrGraph g = sge::csr_from_edges(sge::generate_rmat(params));
    sge::vertex_t u = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.has_edge(u, u + 1));
        u = (u + 1) & (g.num_vertices() - 1);
    }
}
BENCHMARK(BM_HasEdge);

}  // namespace

BENCHMARK_MAIN();
