#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::cycle_graph;
using test::path_graph;
using test::star_graph;
using test::two_cliques;

BfsOptions serial_options() {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    return opts;
}

TEST(BfsSerial, PathGraphLevels) {
    const CsrGraph g = path_graph(10);
    const BfsResult r = bfs(g, 0, serial_options());
    EXPECT_EQ(r.vertices_visited, 10u);
    EXPECT_EQ(r.num_levels, 10u);
    for (vertex_t v = 0; v < 10; ++v) {
        EXPECT_EQ(r.level[v], v);
        EXPECT_EQ(r.parent[v], v == 0 ? 0u : v - 1);
    }
    EXPECT_EQ(r.edges_traversed, g.num_edges());
}

TEST(BfsSerial, PathGraphFromMiddle) {
    const CsrGraph g = path_graph(11);
    const BfsResult r = bfs(g, 5, serial_options());
    EXPECT_EQ(r.vertices_visited, 11u);
    EXPECT_EQ(r.num_levels, 6u);  // levels 0..5
    EXPECT_EQ(r.level[0], 5u);
    EXPECT_EQ(r.level[10], 5u);
    EXPECT_EQ(r.level[5], 0u);
}

TEST(BfsSerial, StarGraphTwoLevels) {
    const CsrGraph g = star_graph(100);
    const BfsResult r = bfs(g, 0, serial_options());
    EXPECT_EQ(r.num_levels, 2u);
    EXPECT_EQ(r.vertices_visited, 100u);
    for (vertex_t v = 1; v < 100; ++v) {
        EXPECT_EQ(r.level[v], 1u);
        EXPECT_EQ(r.parent[v], 0u);
    }
}

TEST(BfsSerial, StarGraphFromLeaf) {
    const CsrGraph g = star_graph(100);
    const BfsResult r = bfs(g, 42, serial_options());
    EXPECT_EQ(r.num_levels, 3u);
    EXPECT_EQ(r.level[0], 1u);
    EXPECT_EQ(r.level[7], 2u);
}

TEST(BfsSerial, CycleGraphDiameter) {
    const CsrGraph g = cycle_graph(12);
    const BfsResult r = bfs(g, 0, serial_options());
    EXPECT_EQ(r.vertices_visited, 12u);
    EXPECT_EQ(r.num_levels, 7u);  // 0..6
    EXPECT_EQ(r.level[6], 6u);    // antipode
    EXPECT_EQ(r.level[11], 1u);
}

TEST(BfsSerial, DisconnectedComponentsStayUnreached) {
    const CsrGraph g = two_cliques(5);
    const BfsResult r = bfs(g, 0, serial_options());
    EXPECT_EQ(r.vertices_visited, 5u);
    for (vertex_t v = 5; v < 10; ++v) {
        EXPECT_EQ(r.parent[v], kInvalidVertex);
        EXPECT_EQ(r.level[v], kInvalidLevel);
    }
    // edges_traversed counts only the reached clique's arcs.
    EXPECT_EQ(r.edges_traversed, 20u);  // K5: 10 undirected = 20 arcs
}

TEST(BfsSerial, IsolatedRoot) {
    const CsrGraph g = csr_from_edges(EdgeList(5));
    const BfsResult r = bfs(g, 3, serial_options());
    EXPECT_EQ(r.vertices_visited, 1u);
    EXPECT_EQ(r.num_levels, 1u);
    EXPECT_EQ(r.parent[3], 3u);
    EXPECT_EQ(r.edges_traversed, 0u);
}

TEST(BfsSerial, SingleVertexGraph) {
    const CsrGraph g = csr_from_edges(EdgeList(1));
    const BfsResult r = bfs(g, 0, serial_options());
    EXPECT_EQ(r.vertices_visited, 1u);
    EXPECT_EQ(r.level[0], 0u);
}

TEST(BfsSerial, InvalidRootThrows) {
    const CsrGraph g = path_graph(5);
    EXPECT_THROW(bfs(g, 5, serial_options()), std::out_of_range);
    EXPECT_THROW(bfs(g, kInvalidVertex, serial_options()), std::out_of_range);
}

TEST(BfsSerial, LevelsCanBeDisabled) {
    BfsOptions opts = serial_options();
    opts.compute_levels = false;
    const BfsResult r = bfs(path_graph(5), 0, opts);
    EXPECT_TRUE(r.level.empty());
    EXPECT_EQ(r.vertices_visited, 5u);
}

TEST(BfsSerial, StatsPerLevel) {
    BfsOptions opts = serial_options();
    opts.collect_stats = true;
    const CsrGraph g = star_graph(50);
    const BfsResult r = bfs(g, 0, opts);
    ASSERT_EQ(r.level_stats.size(), 2u);
    EXPECT_EQ(r.level_stats[0].frontier_size, 1u);
    EXPECT_EQ(r.level_stats[0].edges_scanned, 49u);
    EXPECT_EQ(r.level_stats[1].frontier_size, 49u);
    EXPECT_EQ(r.level_stats[1].edges_scanned, 49u);  // each leaf sees the hub
}

TEST(BfsSerial, ValidatorAcceptsResult) {
    const CsrGraph g = two_cliques(8);
    const BfsResult r = bfs(g, 2, serial_options());
    const ValidationReport report = validate_bfs_tree(g, 2, r);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(BfsSerial, EdgesPerSecondIsFinite) {
    const BfsResult r = bfs(star_graph(1000), 0, serial_options());
    EXPECT_GT(r.edges_per_second(), 0.0);
}

}  // namespace
}  // namespace sge
