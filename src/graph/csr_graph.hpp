#pragma once

#include <cstddef>
#include <span>

#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/prefetch.hpp"

namespace sge {

/// Immutable Compressed Sparse Row graph — the paper's data layout.
///
/// Two flat, cache-line-aligned arrays:
///   offsets[n+1] : edge_offset_t, offsets[v]..offsets[v+1] delimit v's
///                  adjacency in `targets`;
///   targets[m]   : vertex_t neighbour ids.
///
/// The BFS working-set hierarchy the paper builds on top of this layout:
/// the visited bitmap (1 bit/vertex, hot) < parent array (4 B/vertex) <
/// offsets (8 B/vertex) < targets (4 B/edge, cold, streamed).
class CsrGraph {
  public:
    CsrGraph() = default;

    /// Takes ownership of prebuilt arrays. `offsets` must have
    /// num_vertices+1 entries, be non-decreasing, start at 0 and end at
    /// targets.size(); use csr_from_edges() for checked construction.
    CsrGraph(AlignedBuffer<edge_offset_t> offsets, AlignedBuffer<vertex_t> targets)
        : offsets_(std::move(offsets)), targets_(std::move(targets)) {}

    CsrGraph(CsrGraph&&) noexcept = default;
    CsrGraph& operator=(CsrGraph&&) noexcept = default;

    /// GraphAccessor backend marker: the engines branch `if constexpr`
    /// on it to choose span scans here vs decode-on-scan on
    /// CompressedCsrGraph (the `true` side, csr_compressed.hpp).
    static constexpr bool kCompressed = false;

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return offsets_.empty() ? 0 : static_cast<vertex_t>(offsets_.size() - 1);
    }

    [[nodiscard]] edge_offset_t num_edges() const noexcept {
        return offsets_.empty() ? 0 : offsets_[offsets_.size() - 1];
    }

    [[nodiscard]] edge_offset_t degree(vertex_t v) const noexcept {
        return offsets_[v + 1] - offsets_[v];
    }

    /// The adjacency list of `v` as a read-only span.
    [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const noexcept {
        return {targets_.data() + offsets_[v],
                static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
    }

    /// Calls `fn(w)` for every neighbour of `v` in storage order.
    /// Returns the adjacency bytes touched (degree * sizeof(vertex_t))
    /// — the same contract as CompressedCsrGraph::neighbors_for_each,
    /// so accessor-generic code can account streamed volume uniformly.
    template <class Fn>
    std::size_t neighbors_for_each(vertex_t v, Fn&& fn) const noexcept {
        const auto adj = neighbors(v);
        for (const vertex_t w : adj) fn(w);
        return adj.size() * sizeof(vertex_t);
    }

    /// Early-exit variant: `fn(w)` returns true to continue, false to
    /// stop. Returns the bytes touched up to and including the stopping
    /// element.
    template <class Fn>
    std::size_t neighbors_for_each_until(vertex_t v, Fn&& fn) const noexcept {
        const auto adj = neighbors(v);
        std::size_t i = 0;
        while (i < adj.size()) {
            ++i;
            if (!fn(adj[i - 1])) break;
        }
        return i * sizeof(vertex_t);
    }

    /// Prefetches the adjacency metadata a scan of `v` reads first (the
    /// offsets entry); pairs with CompressedCsrGraph::prefetch_adjacency.
    void prefetch_adjacency(vertex_t v) const noexcept {
        prefetch_read(&offsets_[v]);
    }

    /// True when edge (u, v) exists. O(log deg(u)) when the graph was
    /// built with sorted adjacencies (the builder default), else O(deg).
    [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const noexcept;

    [[nodiscard]] std::span<const edge_offset_t> offsets() const noexcept {
        return offsets_.span();
    }
    [[nodiscard]] std::span<const vertex_t> targets() const noexcept {
        return targets_.span();
    }

    /// Heap bytes held by the two arrays.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return offsets_.size() * sizeof(edge_offset_t) +
               targets_.size() * sizeof(vertex_t);
    }

    /// Structural checks (monotone offsets, targets in range). Returns
    /// true when the instance is a well-formed CSR. Used by tests and by
    /// the binary reader on untrusted files.
    [[nodiscard]] bool well_formed() const noexcept;

    /// Deep structural equality (same offsets and targets).
    friend bool operator==(const CsrGraph& a, const CsrGraph& b) noexcept;

  private:
    AlignedBuffer<edge_offset_t> offsets_;
    AlignedBuffer<vertex_t> targets_;
};

}  // namespace sge
