// Streaming graph analysis — the paper's conclusion aims this design at
// "streaming and irregular applications". A network-monitoring-style
// scenario: edges (connections) arrive in batches; after each batch we
// need hop distances from a monitored root without recomputing from
// scratch. Compares the incremental repair against batch BFS recompute
// and audits them against each other.

#include <cstdio>
#include <cstdlib>

#include "core/bfs.hpp"
#include "gen/rmat.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_bfs.hpp"

int main(int argc, char** argv) {
    using namespace sge;

    const vertex_t n =
        argc > 1 ? static_cast<vertex_t>(std::atol(argv[1])) : 100000;
    constexpr int kBatches = 10;
    const std::size_t batch_edges = n / 4;

    // The edge stream: an R-MAT sequence, so later edges preferentially
    // attach to hubs (a realistic arrival process for social/semantic
    // graphs).
    RmatParams params;
    params.scale = 0;
    while ((1ULL << params.scale) < n) ++params.scale;
    params.num_edges = static_cast<std::uint64_t>(kBatches) * batch_edges;
    params.seed = 31;
    const EdgeList stream = generate_rmat(params);

    DynamicGraph graph(static_cast<vertex_t>(1ULL << params.scale));
    IncrementalBfs incremental(graph, /*root=*/0);

    std::printf("streaming %d batches of %zu edges into a %u-vertex graph\n\n",
                kBatches, batch_edges, graph.num_vertices());
    std::printf("%-7s %-12s %-14s %-16s %-12s %s\n", "batch", "arcs", "reached",
                "incremental", "batch BFS", "agree");

    double incremental_total = 0.0;
    double batch_total = 0.0;
    std::size_t cursor = 0;
    for (int b = 0; b < kBatches; ++b) {
        // Ingest + incremental repair.
        WallTimer timer;
        for (std::size_t i = 0; i < batch_edges; ++i) {
            const Edge e = stream[cursor++];
            if (e.src == e.dst) continue;
            graph.add_edge(e.src, e.dst);
            incremental.on_edge_added(e.src, e.dst);
        }
        const double inc_ms = timer.seconds() * 1e3;
        incremental_total += inc_ms;

        // The from-scratch alternative on the same state.
        timer.reset();
        BfsOptions opts;
        opts.engine = BfsEngine::kSerial;
        const BfsResult batch_result = bfs(graph.snapshot(), 0, opts);
        const double batch_ms = timer.seconds() * 1e3;
        batch_total += batch_ms;

        bool agree = batch_result.vertices_visited == incremental.reached_count();
        for (vertex_t v = 0; agree && v < graph.num_vertices(); ++v)
            agree = batch_result.level[v] == incremental.level(v);

        std::printf("%-7d %-12llu %-14llu %-16s %-12s %s\n", b,
                    static_cast<unsigned long long>(graph.num_arcs()),
                    static_cast<unsigned long long>(incremental.reached_count()),
                    (std::to_string(inc_ms) + " ms").c_str(),
                    (std::to_string(batch_ms) + " ms").c_str(),
                    agree ? "yes" : "NO");
        if (!agree) return 1;
    }

    std::printf(
        "\ntotals: incremental %.1f ms (ingest+repair) vs %.1f ms of "
        "recomputes\n(recompute cost grows with the graph; repair cost "
        "tracks only what changed).\n",
        incremental_total, batch_total);
    return 0;
}
