#pragma once

#include <cstddef>
#include <new>

namespace sge {

/// Cache-line size assumed throughout the library. Both Nehalem EP and EX
/// (the paper's platforms, Table I) and every mainstream x86/ARM server
/// part use 64-byte lines. `std::hardware_destructive_interference_size`
/// is deliberately not used: it is an ABI hazard (GCC warns when it leaks
/// into public headers) and 64 is correct on every target we care about.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies (at least) one full cache line.
/// Used for per-thread counters and queue cursors so that writers on
/// different threads never invalidate each other's lines (false sharing).
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
    T value{};

    CachePadded() = default;
    explicit CachePadded(const T& v) : value(v) {}

    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
};

/// Rounds `bytes` up to a whole number of cache lines.
constexpr std::size_t round_up_to_cacheline(std::size_t bytes) noexcept {
    return (bytes + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
}

}  // namespace sge
