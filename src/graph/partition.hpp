#pragma once

#include <utility>

#include "graph/types.hpp"

namespace sge {

/// Contiguous block partition of the vertex id space across sockets —
/// Algorithm 3 line 2: "allocate ns = n/sockets nodes to each socket...
/// if graph node v ∈ socket s then both P[v] and Bitmap[v] ∈ socket s".
///
/// Block (rather than interleaved) assignment keeps each socket's slice
/// of the parent array and bitmap contiguous, so the per-socket working
/// sets are disjoint at cache-line granularity and first-touch places
/// the pages locally on real NUMA hardware.
class SocketPartition {
  public:
    SocketPartition(vertex_t num_vertices, int sockets) noexcept
        : n_(num_vertices),
          sockets_(sockets < 1 ? 1 : sockets),
          block_(num_vertices == 0
                     ? 1
                     : (num_vertices + static_cast<vertex_t>(sockets_) - 1) /
                           static_cast<vertex_t>(sockets_)) {
        if (block_ == 0) block_ = 1;
    }

    /// Socket owning vertex `v` (DetermineSocket in Algorithm 3).
    [[nodiscard]] int socket_of(vertex_t v) const noexcept {
        const auto s = static_cast<int>(v / block_);
        return s < sockets_ ? s : sockets_ - 1;
    }

    /// Half-open vertex range [first, last) owned by `socket`.
    [[nodiscard]] std::pair<vertex_t, vertex_t> range(int socket) const noexcept {
        const auto first = static_cast<std::uint64_t>(socket) * block_;
        auto last = first + block_;
        if (socket == sockets_ - 1) last = n_;  // last block absorbs the tail
        if (first > n_) return {n_, n_};
        if (last > n_) last = n_;
        return {static_cast<vertex_t>(first), static_cast<vertex_t>(last)};
    }

    /// Number of vertices owned by `socket`.
    [[nodiscard]] vertex_t size(int socket) const noexcept {
        const auto [first, last] = range(socket);
        return last - first;
    }

    [[nodiscard]] int sockets() const noexcept { return sockets_; }
    [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
    [[nodiscard]] vertex_t block_size() const noexcept { return block_; }

  private:
    vertex_t n_;
    int sockets_;
    vertex_t block_;
};

}  // namespace sge
