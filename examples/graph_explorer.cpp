// graph_explorer — a miniature of the paper's experimental harness as a
// CLI. Generate (or load) a graph, pick an engine / thread count /
// topology, run timed BFS traversals from random roots, and report the
// processing rate in million edges per second — the paper's metric.
//
// Usage examples:
//   graph_explorer --gen rmat --scale 18 --edges 2097152 --threads 16
//                  --topology ex --engine multisocket --runs 4
//   graph_explorer --gen uniform --vertices 1000000 --degree 8
//   graph_explorer --load mygraph.csr --engine bitmap --threads 4
//   graph_explorer --gen grid --width 1024 --height 1024 --save grid.csr

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/small_world.hpp"
#include "gen/ssca2.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"
#include "graph/io.hpp"
#include "graph/paged_graph.hpp"
#include "graph/reorder.hpp"
#include "runtime/env.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"
#include "service/graph_service.hpp"

namespace {

struct Cli {
    std::string gen = "rmat";
    std::string load;
    std::string save;
    std::string engine = "auto";
    std::string topology = "detect";
    std::string reorder = "none";
    std::string schedule = "edge_weighted";
    std::string frontier_gen = "compact";
    std::size_t chunk = 0;           // 0: keep BfsOptions default
    std::size_t bottomup_chunk = 0;  // 0: engine derives from n/threads
    double alpha = 0.0;              // 0: keep BfsOptions default
    double beta = 0.0;
    std::uint32_t scale = 16;
    std::uint64_t edges = 0;  // 0: 8x vertices
    std::uint64_t vertices = 0;
    std::uint32_t degree = 8;
    std::uint32_t width = 512;
    std::uint32_t height = 512;
    int threads = 0;
    int runs = 3;
    std::uint64_t seed = 1;
    bool compress = false;           // delta+varint adjacency backend
    bool paged = false;              // semi-external mmap backend (SGEPGR01)
    std::string save_compressed;     // write the encoded graph (SGEZSR01)
    bool validate = false;
    bool stats = false;       // per-level counter table after the last run
    std::string trace;        // Chrome trace JSON path (implies stats)

    // --serve: query-service mode (service/graph_service.hpp) instead of
    // the timed-runs loop. N requests stream through a GraphService.
    int serve = 0;                  // request count; 0 = mode off
    int serve_workers = 1;          // dispatcher threads
    std::size_t serve_queue = 256;  // admission queue depth (backpressure)
    double serve_window_ms = 0.5;   // wave-coalescing flush window
    double serve_deadline_ms = 0;   // per-request deadline; 0 = none
};

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--gen rmat|uniform|grid|ssca2|smallworld] [--load FILE]\n"
        "          [--save FILE]\n"
        "          [--engine auto|serial|naive|bitmap|multisocket|hybrid]\n"
        "          [--topology detect|ep|ex|SxCxT] [--threads N] [--runs N]\n"
        "          [--reorder none|shuffle|degree|bfs]\n"
        "          [--schedule static|edge_weighted|stealing]\n"
        "          [--frontier-gen atomic|compact]\n"
        "          [--chunk N] [--bottomup-chunk N] [--alpha X] [--beta X]\n"
        "          [--scale N] [--edges N] [--vertices N] [--degree N]\n"
        "          [--width N] [--height N] [--seed N] [--validate]\n"
        "          [--compress] [--save-compressed FILE] [--paged]\n"
        "          [--stats] [--trace FILE.json]\n"
        "          [--serve N] [--serve-workers N] [--serve-queue N]\n"
        "          [--serve-window MS] [--serve-deadline MS]\n"
        "\n"
        "engine knobs (BfsOptions; see docs/PERF_MODEL.md for tuning):\n"
        "  --schedule        frontier division across workers: static\n"
        "                    chunking, edge_weighted (default; chunks cut\n"
        "                    by out-edge count), or stealing\n"
        "  --frontier-gen    next-queue construction: compact (default;\n"
        "                    per-thread buffers + prefix sum, no queue\n"
        "                    atomics, SIMD bitmap sweeps) or atomic (the\n"
        "                    legacy fetch_add appends, for ablation)\n"
        "  --chunk           vertices per static-schedule claim (default "
        "128)\n"
        "  --bottomup-chunk  hybrid: vertices per bottom-up range claim\n"
        "                    (default 0 = derive from n/threads)\n"
        "  --alpha, --beta   hybrid direction-switch thresholds\n"
        "                    (defaults 14, 24; Beamer et al.)\n"
        "  --compress        run on the delta+varint compressed CSR\n"
        "                    backend (decode-on-scan; trades varint ALU\n"
        "                    for DRAM bytes — wins when bandwidth-bound)\n"
        "  --paged           run on the semi-external paged backend: the\n"
        "                    adjacency payload is spilled to striped\n"
        "                    files ($SGE_PAGED_DIR or the system temp\n"
        "                    dir), mmap'd back, and prefetched one\n"
        "                    frontier ahead — for graphs whose payload\n"
        "                    exceeds RAM. Combine with --compress to\n"
        "                    page the varint blob instead of plain\n"
        "                    targets\n",
        argv0);
    std::exit(2);
}

Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--gen") cli.gen = next();
        else if (arg == "--load") cli.load = next();
        else if (arg == "--save") cli.save = next();
        else if (arg == "--engine") cli.engine = next();
        else if (arg == "--topology") cli.topology = next();
        else if (arg == "--reorder") cli.reorder = next();
        else if (arg == "--schedule") cli.schedule = next();
        else if (arg == "--frontier-gen") cli.frontier_gen = next();
        else if (arg == "--chunk")
            cli.chunk = std::strtoull(next(), nullptr, 10);
        else if (arg == "--bottomup-chunk")
            cli.bottomup_chunk = std::strtoull(next(), nullptr, 10);
        else if (arg == "--alpha") cli.alpha = std::atof(next());
        else if (arg == "--beta") cli.beta = std::atof(next());
        else if (arg == "--scale") cli.scale = std::strtoul(next(), nullptr, 10);
        else if (arg == "--edges") cli.edges = std::strtoull(next(), nullptr, 10);
        else if (arg == "--vertices") cli.vertices = std::strtoull(next(), nullptr, 10);
        else if (arg == "--degree") cli.degree = std::strtoul(next(), nullptr, 10);
        else if (arg == "--width") cli.width = std::strtoul(next(), nullptr, 10);
        else if (arg == "--height") cli.height = std::strtoul(next(), nullptr, 10);
        else if (arg == "--threads") cli.threads = std::atoi(next());
        else if (arg == "--runs") cli.runs = std::atoi(next());
        else if (arg == "--seed") cli.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--compress") cli.compress = true;
        else if (arg == "--paged") cli.paged = true;
        else if (arg == "--save-compressed") cli.save_compressed = next();
        else if (arg == "--validate") cli.validate = true;
        else if (arg == "--stats") cli.stats = true;
        else if (arg == "--trace") cli.trace = next();
        else if (arg == "--serve") cli.serve = std::atoi(next());
        else if (arg == "--serve-workers") cli.serve_workers = std::atoi(next());
        else if (arg == "--serve-queue")
            cli.serve_queue = std::strtoull(next(), nullptr, 10);
        else if (arg == "--serve-window")
            cli.serve_window_ms = std::atof(next());
        else if (arg == "--serve-deadline")
            cli.serve_deadline_ms = std::atof(next());
        else usage(argv[0]);
    }
    return cli;
}

sge::Topology parse_topology(const std::string& spec) {
    using sge::Topology;
    if (spec == "detect") return Topology::detect();
    if (spec == "ep") return Topology::nehalem_ep();
    if (spec == "ex") return Topology::nehalem_ex();
    int s = 0;
    int c = 0;
    int t = 0;
    if (std::sscanf(spec.c_str(), "%dx%dx%d", &s, &c, &t) == 3)
        return Topology::emulate(s, c, t);
    std::fprintf(stderr, "bad --topology '%s'\n", spec.c_str());
    std::exit(2);
}

sge::BfsEngine parse_engine(const std::string& name) {
    using sge::BfsEngine;
    if (name == "auto") return BfsEngine::kAuto;
    if (name == "serial") return BfsEngine::kSerial;
    if (name == "naive") return BfsEngine::kNaive;
    if (name == "bitmap") return BfsEngine::kBitmap;
    if (name == "multisocket") return BfsEngine::kMultiSocket;
    if (name == "hybrid") return BfsEngine::kHybrid;
    std::fprintf(stderr, "bad --engine '%s'\n", name.c_str());
    std::exit(2);
}

sge::FrontierGen parse_frontier_gen(const std::string& name) {
    using sge::FrontierGen;
    if (name == "atomic") return FrontierGen::kAtomic;
    if (name == "compact") return FrontierGen::kCompact;
    std::fprintf(stderr, "bad --frontier-gen '%s'\n", name.c_str());
    std::exit(2);
}

sge::SchedulePolicy parse_schedule(const std::string& name) {
    using sge::SchedulePolicy;
    if (name == "static") return SchedulePolicy::kStatic;
    if (name == "edge_weighted") return SchedulePolicy::kEdgeWeighted;
    if (name == "stealing") return SchedulePolicy::kStealing;
    std::fprintf(stderr, "bad --schedule '%s'\n", name.c_str());
    std::exit(2);
}

sge::CsrGraph make_graph(const Cli& cli) {
    using namespace sge;
    if (!cli.load.empty()) return read_csr(cli.load);

    EdgeList edges;
    if (cli.gen == "rmat") {
        RmatParams params;
        params.scale = cli.scale;
        params.num_edges = cli.edges ? cli.edges : (8ULL << cli.scale);
        params.seed = cli.seed;
        edges = generate_rmat(params);
        permute_vertices(edges, cli.seed + 1);
    } else if (cli.gen == "uniform") {
        UniformParams params;
        params.num_vertices = cli.vertices
                                  ? static_cast<vertex_t>(cli.vertices)
                                  : (1u << cli.scale);
        params.degree = cli.degree;
        params.seed = cli.seed;
        edges = generate_uniform(params);
    } else if (cli.gen == "grid") {
        GridParams params;
        params.width = cli.width;
        params.height = cli.height;
        edges = generate_grid(params);
    } else if (cli.gen == "ssca2") {
        Ssca2Params params;
        params.num_vertices = cli.vertices
                                  ? static_cast<vertex_t>(cli.vertices)
                                  : (1u << cli.scale);
        params.seed = cli.seed;
        edges = generate_ssca2(params);
    } else if (cli.gen == "smallworld") {
        SmallWorldParams params;
        params.num_vertices = cli.vertices
                                  ? static_cast<vertex_t>(cli.vertices)
                                  : (1u << cli.scale);
        params.mean_degree = cli.degree;
        params.seed = cli.seed;
        edges = generate_small_world(params);
    } else {
        std::fprintf(stderr, "bad --gen '%s'\n", cli.gen.c_str());
        std::exit(2);
    }
    return csr_from_edges(edges);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sge;
    const Cli cli = parse(argc, argv);

    CsrGraph graph = make_graph(cli);
    if (cli.reorder != "none") {
        std::vector<vertex_t> perm;
        if (cli.reorder == "degree") {
            perm = degree_descending_order(graph);
        } else if (cli.reorder == "bfs") {
            vertex_t root = 0;
            while (root + 1 < graph.num_vertices() && graph.degree(root) == 0)
                ++root;
            perm = bfs_visit_order(graph, root);
        } else if (cli.reorder == "shuffle") {
            EdgeList edges = edges_from_csr(graph);
            permute_vertices(edges, cli.seed + 99);
            BuildOptions keep;
            keep.make_undirected = false;
            graph = csr_from_edges(edges, keep);
        } else {
            std::fprintf(stderr, "bad --reorder '%s'\n", cli.reorder.c_str());
            return 2;
        }
        if (!perm.empty()) graph = apply_vertex_permutation(graph, perm);
        std::printf("relabelled vertices: %s order\n", cli.reorder.c_str());
    }
    if (!cli.save.empty()) {
        write_csr(graph, cli.save);
        std::printf("saved to %s\n", cli.save.c_str());
    }

    const DegreeStats degrees = compute_degree_stats(graph);
    std::printf("graph: %u vertices, %llu arcs; %s\n", graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()),
                degrees.describe().c_str());

    // Encode once up front when the compressed backend is requested; the
    // same instance serves the stats line, an optional save, and every
    // timed run.
    CompressedCsrGraph zgraph;
    if (cli.compress || !cli.save_compressed.empty()) {
        zgraph = csr_compress(graph);
        const DegreeStats zstats = compute_degree_stats(zgraph);
        std::printf(
            "compressed: %zu B (plain %zu B, ratio %.2fx); %.2f bits/edge\n",
            zgraph.memory_bytes(), graph.memory_bytes(),
            zgraph.memory_bytes() > 0
                ? static_cast<double>(graph.memory_bytes()) /
                      static_cast<double>(zgraph.memory_bytes())
                : 0.0,
            zstats.bits_per_edge);
        if (!cli.save_compressed.empty()) {
            write_compressed_csr(zgraph, cli.save_compressed);
            std::printf("saved compressed to %s\n", cli.save_compressed.c_str());
        }
    }

    // Spill + map the payload when the paged backend is requested. The
    // explorer owns the PagedGraph directly (instead of letting the
    // runner spill internally through GraphBackend::kPaged) so it can
    // report the prefetcher's io counters after the runs.
    PagedGraph pgraph;
    if (cli.paged) {
        const std::string dir = env_string("SGE_PAGED_DIR")
                                    .value_or(std::filesystem::temp_directory_path()
                                                  .string());
        const std::string path =
            (std::filesystem::path(dir) /
             ("graph_explorer_paged_" +
              std::to_string(static_cast<long>(::getpid()))))
                .string();
        PagedWriteOptions wopt;
        wopt.payload = cli.compress ? PagedPayload::kVarintBlob
                                    : PagedPayload::kPlainTargets;
        PagedOpenOptions oopt;
        oopt.owns_files = true;
        oopt.validate_payload = false;  // just written from this process
        pgraph = make_paged(graph, path, wopt, oopt);
        std::printf("paged: %s payload, %zu B in %zu KB stripes at %s\n",
                    to_string(wopt.payload).c_str(), pgraph.payload_bytes(),
                    wopt.stripe_bytes >> 10, path.c_str());
    }

    BfsOptions options;
    options.engine = parse_engine(cli.engine);
    options.topology = parse_topology(cli.topology);
    options.threads = cli.threads;
    options.schedule = parse_schedule(cli.schedule);
    options.frontier_gen = parse_frontier_gen(cli.frontier_gen);
    if (cli.chunk) options.chunk_size = cli.chunk;
    options.bottomup_chunk = cli.bottomup_chunk;
    if (cli.alpha > 0) options.hybrid_alpha = cli.alpha;
    if (cli.beta > 0) options.hybrid_beta = cli.beta;
    if (cli.paged)
        options.backend = cli.compress ? GraphBackend::kPagedCompressed
                                       : GraphBackend::kPaged;
    else if (cli.compress)
        options.backend = GraphBackend::kCompressed;
    // --stats/--trace honour the SGE_OBS=0 runtime master switch.
    const bool instrument =
        (cli.stats || !cli.trace.empty()) && obs::enabled();
    options.collect_stats = instrument;

    if (cli.serve > 0) {
        // Query-service mode: N single-source queries stream through a
        // GraphService — bounded admission, per-request deadlines, wave
        // coalescing, graceful degradation (docs/ROBUSTNESS.md).
        service::ServiceOptions sopt;
        sopt.bfs = options;
        sopt.workers = cli.serve_workers;
        sopt.queue_capacity = cli.serve_queue;
        sopt.batch_window_seconds = cli.serve_window_ms / 1e3;
        sopt.default_deadline_seconds = cli.serve_deadline_ms / 1e3;
        service::GraphService svc(graph, sopt);
        std::printf("service: %d workers, queue %zu, window %.3f ms, "
                    "deadline %s\n",
                    sopt.workers, sopt.queue_capacity, cli.serve_window_ms,
                    cli.serve_deadline_ms > 0
                        ? (std::to_string(cli.serve_deadline_ms) + " ms").c_str()
                        : "none");

        Xoshiro256 roots_rng(cli.seed + 2000);
        std::vector<std::future<service::QueryResult>> futures;
        futures.reserve(static_cast<std::size_t>(cli.serve));
        WallTimer timer;
        for (int i = 0; i < cli.serve; ++i) {
            const auto root = static_cast<vertex_t>(
                roots_rng.next_below(graph.num_vertices()));
            futures.push_back(svc.submit(root).result);
        }
        double max_latency_ms = 0.0;
        for (auto& f : futures) {
            const service::QueryResult r = f.get();
            max_latency_ms = std::max(max_latency_ms,
                                      r.latency_seconds() * 1e3);
        }
        const double seconds = timer.seconds();
        svc.stop();

        const auto& c = svc.counters();
        std::printf("  %d requests in %.3f s (%.0f queries/s), "
                    "max latency %.3f ms\n",
                    cli.serve, seconds,
                    seconds > 0 ? cli.serve / seconds : 0.0, max_latency_ms);
        std::printf("  outcomes: %llu completed (%llu via waves), "
                    "%llu degraded, %llu cancelled, %llu shed, %llu failed\n",
                    static_cast<unsigned long long>(c.completed.load()),
                    static_cast<unsigned long long>(c.batched.load()),
                    static_cast<unsigned long long>(c.degraded.load()),
                    static_cast<unsigned long long>(c.cancelled.load()),
                    static_cast<unsigned long long>(c.shed.load()),
                    static_cast<unsigned long long>(c.failed.load()));
        std::printf("  waves: %llu (%llu roots coalesced), healthy workers "
                    "%d/%d\n",
                    static_cast<unsigned long long>(c.waves.load()),
                    static_cast<unsigned long long>(c.wave_roots.load()),
                    svc.healthy_workers(), sopt.workers);
        return c.resolved() == c.submitted.load() ? 0 : 1;
    }

    BfsRunner runner(options);
    std::printf("engine: %s, %d threads on %s, %s schedule, %s frontiers, "
                "%s backend\n",
                to_string(runner.resolved_engine()).c_str(), runner.threads(),
                runner.topology().describe().c_str(),
                to_string(options.schedule).c_str(),
                to_string(options.frontier_gen).c_str(),
                to_string(options.backend).c_str());

    Xoshiro256 rng(cli.seed + 1000);
    double best = 0.0;
    // One result buffer + the runner's workspace serve every run: after
    // run 0 each traversal is an epoch-bump reset, no reallocation (the
    // query-throughput mode; docs/PERF_MODEL.md).
    BfsResult result;
    BfsResult last;  // instrumented runs keep the final traversal
    for (int run = 0; run < cli.runs; ++run) {
        vertex_t root;
        do {
            root = static_cast<vertex_t>(rng.next_below(graph.num_vertices()));
        } while (graph.degree(root) == 0);

        if (cli.paged)
            runner.run_into(result, pgraph, root);
        else if (cli.compress)
            runner.run_into(result, zgraph, root);
        else
            runner.run_into(result, graph, root);
        const double meps = result.edges_per_second() / 1e6;
        best = std::max(best, meps);
        std::printf(
            "  run %d: root %u -> %llu vertices, %u levels, %.3f s, %.1f ME/s\n",
            run, root, static_cast<unsigned long long>(result.vertices_visited),
            result.num_levels, result.seconds, meps);

        if (cli.validate) {
            const ValidationReport report = validate_bfs_tree(graph, root, result);
            if (!report.ok) {
                std::printf("  VALIDATION FAILED: %s\n", report.error.c_str());
                return 1;
            }
        }
        // Stealing the buffers mid-stream would force run_into to
        // reallocate; only the final traversal is kept.
        if (instrument && run + 1 == cli.runs) last = std::move(result);
    }
    std::printf("best: %.1f million edges/second\n", best);

    if (cli.paged) {
        const PagedIoStats& io = pgraph.io_stats();
        std::printf("paged io: %llu stripe reads, %llu pages prefetch-issued "
                    "(%llu already resident), %llu B mapped\n",
                    static_cast<unsigned long long>(io.stripe_reads.load()),
                    static_cast<unsigned long long>(io.prefetch_issued.load()),
                    static_cast<unsigned long long>(io.prefetch_hits.load()),
                    static_cast<unsigned long long>(io.bytes_mapped.load()));
    }

    if (instrument && cli.stats) {
        std::printf("\nper-level counters (last run%s):\n",
                    obs::compiled_in()
                        ? ""
                        : "; extended columns need an SGE_OBS build");
        std::printf(
            "%5s %10s %12s %12s %12s %12s %12s %10s %10s %10s %12s %10s\n",
            "level", "frontier", "edges", "checks", "skips", "atomics", "wins",
            "remote", "batches", "barrier_us", "dec_bytes", "dec_us");
        for (std::size_t d = 0; d < last.level_stats.size(); ++d) {
            const BfsLevelStats& s = last.level_stats[d];
            std::printf(
                "%5zu %10llu %12llu %12llu %12llu %12llu %12llu %10llu "
                "%10llu %10.1f %12llu %10.1f\n",
                d, static_cast<unsigned long long>(s.frontier_size),
                static_cast<unsigned long long>(s.edges_scanned),
                static_cast<unsigned long long>(s.bitmap_checks),
                static_cast<unsigned long long>(s.bitmap_skips),
                static_cast<unsigned long long>(s.atomic_ops),
                static_cast<unsigned long long>(s.atomic_wins),
                static_cast<unsigned long long>(s.remote_tuples),
                static_cast<unsigned long long>(s.batches_pushed),
                static_cast<double>(s.barrier_wait_ns) / 1000.0,
                static_cast<unsigned long long>(s.bytes_decoded),
                static_cast<double>(s.decode_ns) / 1000.0);
        }
    }
    if (instrument && !cli.trace.empty()) {
        const obs::ChromeTrace trace = make_bfs_trace(last, "graph_explorer");
        if (!trace.write_file(cli.trace)) return 1;
        std::printf("trace: %s (%zu spans; open in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    cli.trace.c_str(), trace.span_count());
    }
    return 0;
}
