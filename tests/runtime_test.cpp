#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>

#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/env.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"
#include "runtime/topology.hpp"

namespace sge {
namespace {

// ---------- PRNG ----------

TEST(Prng, SplitMix64MatchesReferenceVector) {
    // Reference outputs for seed 1234567 from the public-domain
    // splitmix64.c reference implementation.
    SplitMix64 sm(1234567);
    EXPECT_EQ(sm.next(), 6457827717110365317ULL);
    EXPECT_EQ(sm.next(), 3203168211198807973ULL);
    EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(Prng, DeterministicPerSeed) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
    EXPECT_LT(equal, 3);
}

TEST(Prng, NextBelowStaysInBounds) {
    Xoshiro256 rng(7);
    for (std::uint64_t bound : {2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(bound), bound);
    }
}

TEST(Prng, NextBelowCoversRangeRoughlyUniformly) {
    Xoshiro256 rng(11);
    constexpr std::uint64_t kBuckets = 8;
    constexpr int kDraws = 80000;
    std::uint64_t counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
    for (const std::uint64_t c : counts) {
        EXPECT_GT(c, kDraws / kBuckets * 0.9);
        EXPECT_LT(c, kDraws / kBuckets * 1.1);
    }
}

TEST(Prng, NextDoubleInUnitInterval) {
    Xoshiro256 rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

// ---------- cacheline ----------

TEST(CacheLine, PaddedOccupiesFullLines) {
    static_assert(sizeof(CachePadded<int>) == kCacheLineSize);
    static_assert(alignof(CachePadded<int>) == kCacheLineSize);
    static_assert(sizeof(CachePadded<char[100]>) == 2 * kCacheLineSize);
    CachePadded<int> p(41);
    EXPECT_EQ(*p + 1, 42);
}

TEST(CacheLine, RoundUp) {
    EXPECT_EQ(round_up_to_cacheline(0), 0u);
    EXPECT_EQ(round_up_to_cacheline(1), kCacheLineSize);
    EXPECT_EQ(round_up_to_cacheline(64), 64u);
    EXPECT_EQ(round_up_to_cacheline(65), 128u);
}

// ---------- AlignedBuffer ----------

TEST(AlignedBuffer, AlignmentAndSize) {
    AlignedBuffer<std::uint32_t> buf(1000);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineSize, 0u);
}

TEST(AlignedBuffer, ZeroedConstruction) {
    AlignedBuffer<std::uint64_t> buf(4096, /*zeroed=*/true);
    for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
    AlignedBuffer<int> a(16, true);
    a[3] = 99;
    int* const p = a.data();
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b[3], 99);
}

TEST(AlignedBuffer, EmptyBuffer) {
    AlignedBuffer<int> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    AlignedBuffer<int> zero(0);
    EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, SpanViewsData) {
    AlignedBuffer<int> buf(8, true);
    buf[5] = 7;
    auto s = buf.span();
    EXPECT_EQ(s.size(), 8u);
    EXPECT_EQ(s[5], 7);
}

// ---------- env ----------

TEST(Env, StringIntBool) {
    ::setenv("SGE_TEST_STR", "hello", 1);
    ::setenv("SGE_TEST_INT", "-42", 1);
    ::setenv("SGE_TEST_BOOL", "Yes", 1);
    ::setenv("SGE_TEST_BAD", "zzz", 1);
    EXPECT_EQ(env_string("SGE_TEST_STR").value(), "hello");
    EXPECT_EQ(env_int("SGE_TEST_INT", 0), -42);
    EXPECT_TRUE(env_bool("SGE_TEST_BOOL", false));
    EXPECT_EQ(env_int("SGE_TEST_BAD", 17), 17);
    EXPECT_TRUE(env_bool("SGE_TEST_BAD", true));
    EXPECT_FALSE(env_string("SGE_TEST_MISSING_XYZ").has_value());
    EXPECT_EQ(env_int("SGE_TEST_MISSING_XYZ", 5), 5);
    ::unsetenv("SGE_TEST_STR");
    ::unsetenv("SGE_TEST_INT");
    ::unsetenv("SGE_TEST_BOOL");
    ::unsetenv("SGE_TEST_BAD");
}

// ---------- Timer ----------

TEST(Timer, MeasuresElapsedTime) {
    WallTimer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const double s = t.seconds();
    EXPECT_GE(s, 0.009);
    EXPECT_LT(s, 5.0);
    t.reset();
    EXPECT_LT(t.seconds(), 0.009);
}

// ---------- Topology ----------

TEST(Topology, EmulatedShape) {
    const Topology t = Topology::emulate(4, 8, 2);
    EXPECT_EQ(t.sockets(), 4);
    EXPECT_EQ(t.cores_per_socket(), 8);
    EXPECT_EQ(t.smt_per_core(), 2);
    EXPECT_EQ(t.max_threads(), 64);
    EXPECT_TRUE(t.emulated());
}

TEST(Topology, PaperMachines) {
    EXPECT_EQ(Topology::nehalem_ep().max_threads(), 16);
    EXPECT_EQ(Topology::nehalem_ex().max_threads(), 64);
}

TEST(Topology, SocketMajorPlacement) {
    // 2x4x2 EP: threads 0-3 socket 0, 4-7 socket 1, then SMT wraps.
    const Topology t = Topology::nehalem_ep();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(t.socket_of_thread(i), 0) << i;
    for (int i = 4; i < 8; ++i) EXPECT_EQ(t.socket_of_thread(i), 1) << i;
    for (int i = 8; i < 12; ++i) EXPECT_EQ(t.socket_of_thread(i), 0) << i;
    for (int i = 12; i < 16; ++i) EXPECT_EQ(t.socket_of_thread(i), 1) << i;
}

TEST(Topology, SocketsUsed) {
    const Topology t = Topology::nehalem_ex();  // 4x8x2
    EXPECT_EQ(t.sockets_used(1), 1);
    EXPECT_EQ(t.sockets_used(8), 1);
    EXPECT_EQ(t.sockets_used(9), 2);
    EXPECT_EQ(t.sockets_used(32), 4);
    EXPECT_EQ(t.sockets_used(64), 4);
}

TEST(Topology, EmulatedHasNoCpuPinning) {
    const Topology t = Topology::emulate(2, 2, 1);
    EXPECT_EQ(t.cpu_of_thread(0), -1);
    EXPECT_EQ(t.cpu_of_thread(100), -1);
}

TEST(Topology, DetectReturnsSaneShape) {
    const Topology t = Topology::detect();
    EXPECT_GE(t.sockets(), 1);
    EXPECT_GE(t.cores_per_socket(), 1);
    EXPECT_GE(t.max_threads(), 1);
    EXPECT_FALSE(t.emulated());
    EXPECT_GE(t.cpu_of_thread(0), 0);  // at least CPU 0 exists
}

TEST(Topology, DescribeMentionsShape) {
    const std::string d = Topology::emulate(4, 8, 2).describe();
    EXPECT_NE(d.find("4 sockets"), std::string::npos);
    EXPECT_NE(d.find("emulated"), std::string::npos);
}

TEST(Topology, DegenerateInputsClampToOne) {
    const Topology t = Topology::emulate(0, 0, 0);
    EXPECT_EQ(t.sockets(), 1);
    EXPECT_EQ(t.max_threads(), 1);
    EXPECT_EQ(t.socket_of_thread(0), 0);
}

}  // namespace
}  // namespace sge
