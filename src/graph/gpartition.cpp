#include "graph/gpartition.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "graph/partition.hpp"
#include "runtime/prng.hpp"

namespace sge {

PartitionQuality evaluate_partition(const CsrGraph& g,
                                    std::span<const int> part, int parts) {
    if (part.size() != g.num_vertices())
        throw std::invalid_argument(
            "evaluate_partition: assignment size != num_vertices");
    if (parts < 1) throw std::invalid_argument("evaluate_partition: parts < 1");

    PartitionQuality quality;
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(parts), 0);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        const int p = part[v];
        if (p < 0 || p >= parts)
            throw std::invalid_argument("evaluate_partition: part id out of range");
        ++sizes[static_cast<std::size_t>(p)];
        for (const vertex_t w : g.neighbors(v))
            if (part[w] != p) ++quality.cut_arcs;
    }
    const double ideal =
        static_cast<double>(g.num_vertices()) / static_cast<double>(parts);
    const std::uint64_t biggest = *std::max_element(sizes.begin(), sizes.end());
    quality.imbalance = ideal > 0 ? static_cast<double>(biggest) / ideal - 1.0
                                  : 0.0;
    return quality;
}

PartitionAssignment block_partition(vertex_t num_vertices, int parts) {
    const SocketPartition blocks(num_vertices, parts);
    PartitionAssignment out;
    out.parts = blocks.sockets();
    out.part.resize(num_vertices);
    for (vertex_t v = 0; v < num_vertices; ++v)
        out.part[v] = blocks.socket_of(v);
    return out;
}

PartitionAssignment bfs_grow_partition(const CsrGraph& g, int parts,
                                       std::uint64_t seed) {
    const vertex_t n = g.num_vertices();
    if (parts < 1) throw std::invalid_argument("bfs_grow_partition: parts < 1");
    parts = std::min<int>(parts, std::max<vertex_t>(n, 1));

    PartitionAssignment out;
    out.parts = parts;
    out.part.assign(n, -1);
    if (n == 0) return out;

    const std::uint64_t cap =
        (n + static_cast<std::uint64_t>(parts) - 1) / parts;
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(parts), 0);
    std::vector<std::deque<vertex_t>> frontier(
        static_cast<std::size_t>(parts));

    // Seeds: distinct random vertices.
    Xoshiro256 rng(seed);
    for (int p = 0; p < parts; ++p) {
        vertex_t s;
        do {
            s = static_cast<vertex_t>(rng.next_below(n));
        } while (out.part[s] != -1);
        out.part[s] = p;
        ++sizes[static_cast<std::size_t>(p)];
        frontier[static_cast<std::size_t>(p)].push_back(s);
    }

    // Round-robin breadth-first growth under the cap.
    bool progress = true;
    while (progress) {
        progress = false;
        for (int p = 0; p < parts; ++p) {
            auto& q = frontier[static_cast<std::size_t>(p)];
            // Claim at most one vertex's adjacency per turn so the
            // regions grow in lockstep (balance over speed).
            while (!q.empty() && sizes[static_cast<std::size_t>(p)] < cap) {
                const vertex_t u = q.front();
                q.pop_front();
                bool claimed = false;
                for (const vertex_t w : g.neighbors(u)) {
                    if (out.part[w] != -1) continue;
                    if (sizes[static_cast<std::size_t>(p)] >= cap) break;
                    out.part[w] = p;
                    ++sizes[static_cast<std::size_t>(p)];
                    q.push_back(w);
                    claimed = true;
                }
                progress = true;
                if (claimed) break;  // yield the turn after real growth
            }
        }
    }

    // Debris (other components / cap overflow): emptiest part first.
    for (vertex_t v = 0; v < n; ++v) {
        if (out.part[v] != -1) continue;
        const auto emptiest = static_cast<int>(
            std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
        out.part[v] = emptiest;
        ++sizes[static_cast<std::size_t>(emptiest)];
    }
    return out;
}

std::vector<vertex_t> partition_order(const PartitionAssignment& assignment) {
    const auto n = static_cast<vertex_t>(assignment.part.size());
    // Counting sort by part id, stable within a part.
    std::vector<vertex_t> start(static_cast<std::size_t>(assignment.parts) + 1,
                                0);
    for (const int p : assignment.part) {
        if (p < 0 || p >= assignment.parts)
            throw std::invalid_argument("partition_order: part id out of range");
        ++start[static_cast<std::size_t>(p) + 1];
    }
    for (std::size_t p = 1; p < start.size(); ++p) start[p] += start[p - 1];

    std::vector<vertex_t> perm(n);
    for (vertex_t v = 0; v < n; ++v)
        perm[v] = start[static_cast<std::size_t>(assignment.part[v])]++;
    return perm;
}

}  // namespace sge
