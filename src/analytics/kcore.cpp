#include "analytics/kcore.hpp"

#include <algorithm>

namespace sge {

std::vector<vertex_t> KcoreResult::members_of(std::uint32_t k) const {
    std::vector<vertex_t> out;
    for (vertex_t v = 0; v < core.size(); ++v)
        if (core[v] >= k) out.push_back(v);
    return out;
}

KcoreResult kcore_decomposition(const CsrGraph& g) {
    const vertex_t n = g.num_vertices();
    KcoreResult result;
    result.core.assign(n, 0);
    if (n == 0) return result;

    // Bucket sort vertices by (current) degree: bin[d] = start offset of
    // degree-d vertices in `order`. This is the classic O(n + m) layout.
    std::uint32_t max_degree = 0;
    std::vector<std::uint32_t> degree(n);
    for (vertex_t v = 0; v < n; ++v) {
        degree[v] = static_cast<std::uint32_t>(g.degree(v));
        max_degree = std::max(max_degree, degree[v]);
    }

    std::vector<std::size_t> bin(max_degree + 2, 0);
    for (vertex_t v = 0; v < n; ++v) ++bin[degree[v] + 1];
    for (std::size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];

    std::vector<vertex_t> order(n);       // vertices sorted by degree
    std::vector<std::size_t> position(n); // position of v in `order`
    {
        std::vector<std::size_t> cursor(bin.begin(), bin.end() - 1);
        for (vertex_t v = 0; v < n; ++v) {
            position[v] = cursor[degree[v]]++;
            order[position[v]] = v;
        }
    }

    // Peel in degree order; when v is removed with current degree d,
    // core(v) = d, and each yet-unpeeled neighbour's degree drops by one
    // (moved one bucket down via a swap with its bucket's first member).
    for (std::size_t i = 0; i < n; ++i) {
        const vertex_t v = order[i];
        result.core[v] = degree[v];
        for (const vertex_t u : g.neighbors(v)) {
            if (degree[u] <= degree[v]) continue;  // already peeled or tied
            const std::size_t pu = position[u];
            const std::size_t pw = bin[degree[u]];  // bucket head
            const vertex_t w = order[pw];
            if (u != w) {
                std::swap(order[pu], order[pw]);
                position[u] = pw;
                position[w] = pu;
            }
            ++bin[degree[u]];
            --degree[u];
        }
    }

    result.degeneracy =
        *std::max_element(result.core.begin(), result.core.end());
    return result;
}

}  // namespace sge
