#include <gtest/gtest.h>

#include <numeric>

#include "analytics/kcore.hpp"
#include "analytics/triangles.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

CsrGraph clique(vertex_t k) {
    EdgeList edges(k);
    for (vertex_t a = 0; a < k; ++a)
        for (vertex_t b = a + 1; b < k; ++b) edges.add(a, b);
    return csr_from_edges(edges);
}

// ---------- k-core ----------

TEST(Kcore, CliqueIsKMinusOneCore) {
    const KcoreResult r = kcore_decomposition(clique(6));
    EXPECT_EQ(r.degeneracy, 5u);
    for (const auto c : r.core) EXPECT_EQ(c, 5u);
}

TEST(Kcore, PathIsOneCore) {
    const KcoreResult r = kcore_decomposition(test::path_graph(10));
    EXPECT_EQ(r.degeneracy, 1u);
    for (const auto c : r.core) EXPECT_EQ(c, 1u);
}

TEST(Kcore, StarLeavesAreOneCore) {
    const KcoreResult r = kcore_decomposition(test::star_graph(10));
    EXPECT_EQ(r.degeneracy, 1u);
    EXPECT_EQ(r.core[0], 1u);  // hub peels once all leaves are gone
}

TEST(Kcore, CycleIsTwoCore) {
    const KcoreResult r = kcore_decomposition(test::cycle_graph(7));
    EXPECT_EQ(r.degeneracy, 2u);
    for (const auto c : r.core) EXPECT_EQ(c, 2u);
}

TEST(Kcore, CliqueWithTailSeparates) {
    // K5 (0..4) plus a tail 4-5-6.
    EdgeList edges(7);
    for (vertex_t a = 0; a < 5; ++a)
        for (vertex_t b = a + 1; b < 5; ++b) edges.add(a, b);
    edges.add(4, 5);
    edges.add(5, 6);
    const KcoreResult r = kcore_decomposition(csr_from_edges(edges));
    for (vertex_t v = 0; v < 5; ++v) EXPECT_EQ(r.core[v], 4u) << v;
    EXPECT_EQ(r.core[5], 1u);
    EXPECT_EQ(r.core[6], 1u);
    EXPECT_EQ(r.members_of(4).size(), 5u);
    EXPECT_EQ(r.members_of(1).size(), 7u);
}

TEST(Kcore, IsolatedVerticesAreZeroCore) {
    const KcoreResult r = kcore_decomposition(csr_from_edges(EdgeList(4)));
    for (const auto c : r.core) EXPECT_EQ(c, 0u);
    EXPECT_EQ(r.degeneracy, 0u);
}

TEST(Kcore, CoreInvariantHoldsOnRandomGraph) {
    // Defining property: in the subgraph induced by {v : core[v] >= k},
    // every member has at least k neighbours inside.
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const KcoreResult r = kcore_decomposition(g);
    ASSERT_GT(r.degeneracy, 1u);

    for (const std::uint32_t k : {1u, 2u, r.degeneracy}) {
        for (vertex_t v = 0; v < g.num_vertices(); ++v) {
            if (r.core[v] < k) continue;
            std::uint32_t inside = 0;
            for (const vertex_t w : g.neighbors(v)) inside += (r.core[w] >= k);
            ASSERT_GE(inside, k) << "vertex " << v << " in " << k << "-core";
        }
    }
}

TEST(Kcore, EmptyGraph) {
    const KcoreResult r = kcore_decomposition(csr_from_edges(EdgeList(0)));
    EXPECT_TRUE(r.core.empty());
    EXPECT_EQ(r.degeneracy, 0u);
}

// ---------- triangles ----------

TEST(Triangles, CliqueCensus) {
    const TriangleCounts t = count_triangles(clique(5));
    EXPECT_EQ(t.total, 10u);  // C(5,3)
    for (const auto c : t.per_vertex) EXPECT_EQ(c, 6u);  // C(4,2)
    EXPECT_DOUBLE_EQ(t.global_clustering(clique(5)), 1.0);
}

TEST(Triangles, TreesAndCyclesHaveNone) {
    EXPECT_EQ(count_triangles(test::path_graph(50)).total, 0u);
    EXPECT_EQ(count_triangles(test::star_graph(50)).total, 0u);
    EXPECT_EQ(count_triangles(test::cycle_graph(50)).total, 0u);
}

TEST(Triangles, TriangleWithPendant) {
    EdgeList edges(4);
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(2, 0);
    edges.add(2, 3);
    const CsrGraph g = csr_from_edges(edges);
    const TriangleCounts t = count_triangles(g);
    EXPECT_EQ(t.total, 1u);
    EXPECT_EQ(t.per_vertex[0], 1u);
    EXPECT_EQ(t.per_vertex[1], 1u);
    EXPECT_EQ(t.per_vertex[2], 1u);
    EXPECT_EQ(t.per_vertex[3], 0u);
    // wedges: deg 2,2,3,1 -> 1+1+3+0 = 5; clustering = 3/5.
    EXPECT_DOUBLE_EQ(t.global_clustering(g), 0.6);
}

TEST(Triangles, PerVertexSumsToThreeTimesTotal) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 1 << 13;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const TriangleCounts t = count_triangles(g);
    EXPECT_GT(t.total, 0u);  // R-MAT has community structure
    const std::uint64_t sum = std::accumulate(
        t.per_vertex.begin(), t.per_vertex.end(), std::uint64_t{0});
    EXPECT_EQ(sum, 3 * t.total);
}

TEST(Triangles, ParallelMatchesSerial) {
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 10;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const TriangleCounts serial = count_triangles(g);

    TriangleOptions opts;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    const TriangleCounts parallel = count_triangles(g, opts);
    EXPECT_EQ(serial.total, parallel.total);
    EXPECT_EQ(serial.per_vertex, parallel.per_vertex);
}

TEST(Triangles, EmptyGraph) {
    const TriangleCounts t = count_triangles(csr_from_edges(EdgeList(0)));
    EXPECT_EQ(t.total, 0u);
    EXPECT_DOUBLE_EQ(t.global_clustering(csr_from_edges(EdgeList(0))), 0.0);
}

}  // namespace
}  // namespace sge
