#include "analytics/level_histogram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sge {

std::vector<std::uint64_t> level_histogram(const BfsResult& result) {
    if (result.level.empty())
        throw std::invalid_argument(
            "level_histogram: BFS was run without compute_levels");

    std::vector<std::uint64_t> histogram;
    for (const level_t l : result.level) {
        if (l == kInvalidLevel) continue;
        if (histogram.size() <= l) histogram.resize(l + 1, 0);
        ++histogram[l];
    }
    return histogram;
}

std::string render_level_histogram(const std::vector<std::uint64_t>& histogram,
                                   std::size_t max_width) {
    if (histogram.empty()) return "(empty)\n";
    const std::uint64_t peak =
        *std::max_element(histogram.begin(), histogram.end());
    if (max_width == 0) max_width = 1;

    std::ostringstream out;
    for (std::size_t d = 0; d < histogram.size(); ++d) {
        const std::size_t bar =
            peak == 0 ? 0
                      : static_cast<std::size_t>(
                            (histogram[d] * max_width + peak - 1) / peak);
        out << "level " << d << " | ";
        for (std::size_t i = 0; i < bar; ++i) out << '#';
        out << ' ' << histogram[d] << '\n';
    }
    return out.str();
}

}  // namespace sge
