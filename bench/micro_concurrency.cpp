// google-benchmark microbenchmarks for the concurrency substrate: the
// costs the paper quotes (20 ns FastForward enqueue/dequeue, ~30 ns
// normalized per-vertex channel insertion with batching) are directly
// measurable here.

#include <benchmark/benchmark.h>

#include <atomic>

#include "concurrency/atomic_bitmap.hpp"
#include "concurrency/channel.hpp"
#include "concurrency/spin_barrier.hpp"
#include "concurrency/spsc_ring.hpp"
#include "concurrency/ticket_lock.hpp"
#include "core/frontier.hpp"

namespace {

constexpr std::uint64_t kEmpty = ~0ULL;

void BM_TicketLockUncontended(benchmark::State& state) {
    sge::TicketLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_TicketLockUncontended);

void BM_SpscRingPushPop(benchmark::State& state) {
    sge::SpscRing<std::uint64_t, kEmpty> ring(1 << 12);
    std::uint64_t v = 0;
    for (auto _ : state) {
        ring.try_push(v++);
        benchmark::DoNotOptimize(ring.try_pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBulkTransfer(benchmark::State& state) {
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    sge::SpscRing<std::uint64_t, kEmpty> ring(1 << 12);
    std::vector<std::uint64_t> out(batch);
    std::uint64_t v = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < batch; ++i) ring.try_push(v++);
        benchmark::DoNotOptimize(ring.pop_bulk(out.data(), batch));
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpscRingBulkTransfer)->Arg(8)->Arg(64)->Arg(256);

void BM_ChannelBatchedRoundTrip(benchmark::State& state) {
    // The paper's ~30 ns/vertex claim: batched push+pop through the
    // ticket-locked FastForward channel, normalized per item.
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    sge::Channel<std::uint64_t, kEmpty> channel(1 << 12);
    std::vector<std::uint64_t> in(batch, 7);
    std::vector<std::uint64_t> out(batch);
    for (auto _ : state) {
        channel.push_batch(in.data(), batch);
        std::size_t drained = 0;
        while (drained < batch)
            drained += channel.pop_batch(out.data(), batch - drained);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ChannelBatchedRoundTrip)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_BitmapTest(benchmark::State& state) {
    sge::AtomicBitmap bitmap(1 << 20);
    for (std::size_t i = 0; i < (1u << 20); i += 2) bitmap.test_and_set(i);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bitmap.test(i));
        i = (i + 1) & ((1u << 20) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapTest);

void BM_BitmapTestAndSet(benchmark::State& state) {
    sge::AtomicBitmap bitmap(1 << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bitmap.test_and_set(i));
        i = (i + 1) & ((1u << 20) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapTestAndSet);

void BM_BitmapDoubleCheckedVisited(benchmark::State& state) {
    // The hot path of Algorithm 2 on an already-visited vertex: the
    // double check makes this a plain load.
    sge::AtomicBitmap bitmap(1 << 16);
    for (std::size_t i = 0; i < (1u << 16); ++i) bitmap.test_and_set(i);
    std::size_t i = 0;
    for (auto _ : state) {
        bool discovered = false;
        if (!bitmap.test(i)) discovered = !bitmap.test_and_set(i);
        benchmark::DoNotOptimize(discovered);
        i = (i + 1) & ((1u << 16) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapDoubleCheckedVisited);

void BM_FrontierPushBatch(benchmark::State& state) {
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    sge::FrontierQueue queue(1 << 20);
    std::vector<sge::vertex_t> items(batch, 5);
    for (auto _ : state) {
        queue.push_batch(items.data(), batch);
        if (queue.size() + batch > queue.capacity()) queue.reset();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FrontierPushBatch)->Arg(1)->Arg(64);

void BM_BarrierSingleParty(benchmark::State& state) {
    sge::SpinBarrier barrier(1);
    for (auto _ : state) barrier.arrive_and_wait();
}
BENCHMARK(BM_BarrierSingleParty);

}  // namespace

BENCHMARK_MAIN();
