#include "analytics/parallel_sssp.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"
#include "runtime/timer.hpp"

namespace sge {

namespace {

/// CAS-min on a tentative distance. Returns true when `nd` won (strictly
/// improved the stored value).
bool relax_min(std::uint64_t& slot, dist_t nd) noexcept {
    std::atomic_ref<std::uint64_t> ref(slot);
    std::uint64_t cur = ref.load(std::memory_order_relaxed);
    while (nd < cur) {
        if (ref.compare_exchange_weak(cur, nd, std::memory_order_acq_rel,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

enum class Phase { kLight, kHeavy };

}  // namespace

SsspResult parallel_delta_stepping(const WeightedCsrGraph& g, vertex_t source,
                                   const ParallelSsspOptions& options) {
    const vertex_t n = g.num_vertices();
    if (source >= n)
        throw std::out_of_range("parallel_delta_stepping: source out of range");

    WallTimer timer;
    SsspResult result;
    result.distance.assign(n, kInfiniteDistance);
    result.parent.assign(n, kInvalidVertex);
    result.distance[source] = 0;
    result.parent[source] = source;

    weight_t delta = options.delta;
    if (delta == 0) {
        std::uint64_t total = 0;
        for (const weight_t w : g.all_weights()) total += w;
        const std::uint64_t m = g.num_edges();
        delta = m == 0 ? 1
                       : static_cast<weight_t>(std::max<std::uint64_t>(
                             1, total / std::max<std::uint64_t>(m, 1)));
    }
    const auto bucket_of = [delta](dist_t d) {
        return static_cast<std::size_t>(d / delta);
    };

    const int threads = std::max(1, options.threads);
    const std::size_t chunk = std::max<std::size_t>(1, options.chunk_size);
    ThreadTeam team(threads,
                    options.topology ? *options.topology : Topology::detect());
    SpinBarrier barrier(threads);

    // Thread-local staging, merged by thread 0 between barriers.
    struct ThreadState {
        std::vector<std::pair<std::size_t, vertex_t>> pending;  // (bucket, v)
        std::vector<vertex_t> settled;  // candidates for the heavy phase
        std::uint64_t edges_relaxed = 0;
    };
    std::vector<ThreadState> states(static_cast<std::size_t>(threads));

    // Buckets keyed by index (sparse: only touched buckets exist).
    // Accessed by thread 0 only, between barriers.
    std::map<std::size_t, std::vector<vertex_t>> buckets;
    buckets[0].push_back(source);

    struct Shared {
        std::vector<vertex_t> frontier;
        std::atomic<std::size_t> cursor{0};
        std::size_t bucket = 0;
        Phase phase = Phase::kLight;
        bool done = false;
    } shared;
    shared.frontier = std::move(buckets.begin()->second);
    buckets.erase(buckets.begin());

    std::uint64_t* const dist = result.distance.data();

    team.run([&](int tid) {
        ThreadState& local = states[static_cast<std::size_t>(tid)];
        for (;;) {
            // ---- process the current frontier ----
            const bool light = shared.phase == Phase::kLight;
            const std::size_t my_bucket = shared.bucket;
            for (;;) {
                const std::size_t base =
                    shared.cursor.fetch_add(chunk, std::memory_order_relaxed);
                if (base >= shared.frontier.size()) break;
                const std::size_t stop = std::min(base + chunk,
                                                  shared.frontier.size());
                for (std::size_t i = base; i < stop; ++i) {
                    const vertex_t u = shared.frontier[i];
                    const dist_t du = std::atomic_ref<std::uint64_t>(dist[u])
                                          .load(std::memory_order_acquire);
                    // Stale entry: u moved to a lighter bucket since it
                    // was queued here.
                    if (du == kInfiniteDistance || bucket_of(du) != my_bucket)
                        continue;
                    if (light) local.settled.push_back(u);

                    const auto adj = g.neighbors(u);
                    const auto w = g.weights(u);
                    for (std::size_t e = 0; e < adj.size(); ++e) {
                        const bool is_light = w[e] <= delta;
                        if (is_light != light) continue;
                        ++local.edges_relaxed;
                        const dist_t nd = du + w[e];
                        if (relax_min(dist[adj[e]], nd))
                            local.pending.emplace_back(bucket_of(nd), adj[e]);
                    }
                }
            }
            if (!barrier.arrive_and_wait()) return;

            // ---- thread 0: merge staging, steer the next phase ----
            if (tid == 0) {
                for (ThreadState& s : states) {
                    for (const auto& [b, v] : s.pending)
                        buckets[b].push_back(v);
                    s.pending.clear();
                }

                const auto current = buckets.find(shared.bucket);
                if (shared.phase == Phase::kLight &&
                    current != buckets.end() && !current->second.empty()) {
                    // Another light round: re-inserted vertices of this
                    // bucket.
                    shared.frontier = std::move(current->second);
                    buckets.erase(current);
                } else if (shared.phase == Phase::kLight) {
                    // Bucket settled: heavy edges fire once, from every
                    // vertex any worker settled in this bucket.
                    shared.frontier.clear();
                    for (ThreadState& s : states) {
                        shared.frontier.insert(shared.frontier.end(),
                                               s.settled.begin(),
                                               s.settled.end());
                        s.settled.clear();
                    }
                    shared.phase = Phase::kHeavy;
                } else {
                    // Advance to the next non-empty bucket.
                    const auto next = buckets.lower_bound(shared.bucket + 1);
                    if (next == buckets.end()) {
                        shared.done = true;
                    } else {
                        shared.bucket = next->first;
                        shared.frontier = std::move(next->second);
                        buckets.erase(next);
                        shared.phase = Phase::kLight;
                    }
                }
                shared.cursor.store(0, std::memory_order_relaxed);
            }
            if (!barrier.arrive_and_wait()) return;
            if (shared.done) break;
        }
    }, &barrier);

    // Rebuild parents from final distances: CAS winners may have raced
    // their parent stores, so the tree is derived, not tracked. Any
    // neighbour u with dist[u] + w(u,v) == dist[v] is a valid parent.
    team.run([&](int tid) {
        const std::size_t per =
            (n + static_cast<std::size_t>(threads) - 1) / threads;
        const std::size_t begin = static_cast<std::size_t>(tid) * per;
        const std::size_t end = std::min<std::size_t>(begin + per, n);
        for (std::size_t vi = begin; vi < end; ++vi) {
            const auto v = static_cast<vertex_t>(vi);
            if (v == source || result.distance[v] == kInfiniteDistance) continue;
            const auto adj = g.neighbors(v);
            const auto w = g.weights(v);  // symmetric weights: w(v,u)==w(u,v)
            for (std::size_t e = 0; e < adj.size(); ++e) {
                const vertex_t u = adj[e];
                if (result.distance[u] != kInfiniteDistance &&
                    result.distance[u] + w[e] == result.distance[v]) {
                    result.parent[v] = u;
                    break;
                }
            }
        }
    });

    for (const ThreadState& s : states) result.edges_relaxed += s.edges_relaxed;
    for (const dist_t d : result.distance)
        if (d != kInfiniteDistance) ++result.vertices_settled;
    result.seconds = timer.seconds();
    return result;
}

}  // namespace sge
