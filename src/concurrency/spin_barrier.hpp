#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "concurrency/ticket_lock.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace sge {

/// Centralized sense-reversing barrier for the level-synchronous BFS
/// ("Synchronize" in Algorithms 2 and 3).
///
/// A generation counter doubles as the sense: arrivals decrement a
/// count, the last arrival resets it and bumps the generation, everyone
/// else spins until the generation moves. The spin is bounded and falls
/// back to yield because emulated topologies oversubscribe the physical
/// CPUs (64 workers on this container's single core must not spin-wait
/// on each other).
///
/// Abort protocol: a party that cannot reach the barrier (it threw, or
/// a watchdog decided the run is stuck) calls abort(), which poisons
/// the barrier — every current waiter is released immediately and every
/// future arrival returns straight away, all with `false`. Poisoning is
/// sticky: an aborted barrier never admits another phase, so workers
/// checking the return value unwind in bounded time instead of spinning
/// on a generation that will never advance. ThreadTeam::run trips this
/// automatically for the barrier registered with it (see thread_team.hpp).
class SpinBarrier {
  public:
    explicit SpinBarrier(int parties) noexcept
        : parties_(parties) {
        count_->store(parties, std::memory_order_relaxed);
        aborted_->store(false, std::memory_order_relaxed);
    }

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /// Arrives and waits for the other parties. Returns true on a
    /// normal release; false when the barrier is (or becomes) aborted,
    /// in which case the caller must unwind — the phase structure is
    /// gone and no further barrier will complete.
    ///
    /// May throw fault::FaultInjected when the `barrier` fault site is
    /// armed (never in production builds with injection disabled).
    bool arrive_and_wait() {
        fault::maybe_throw(fault::Site::kBarrier);
        if (aborted_->load(std::memory_order_acquire)) return false;
        const std::uint64_t gen = generation_->load(std::memory_order_acquire);
        if (count_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
            count_->store(parties_, std::memory_order_relaxed);
            generation_->fetch_add(1, std::memory_order_release);
            return !aborted_->load(std::memory_order_acquire);
        }
        int spins = 0;
        while (generation_->load(std::memory_order_acquire) == gen) {
            if (aborted_->load(std::memory_order_acquire)) return false;
            if (++spins < kSpinLimit) {
                TicketLock::cpu_pause();
            } else {
                std::this_thread::yield();
            }
        }
        return !aborted_->load(std::memory_order_acquire);
    }

    /// Poisons the barrier (idempotent, async-signal-unsafe but
    /// thread-safe): releases all current waiters and makes every
    /// future arrive_and_wait return false immediately.
    void abort() noexcept {
        if (!aborted_->exchange(true, std::memory_order_acq_rel))
            runtime_warnings().barrier_aborts.fetch_add(
                1, std::memory_order_relaxed);
    }

    [[nodiscard]] bool aborted() const noexcept {
        return aborted_->load(std::memory_order_acquire);
    }

    [[nodiscard]] int parties() const noexcept { return parties_; }

  private:
    static constexpr int kSpinLimit = 128;
    const int parties_;
    CachePadded<std::atomic<int>> count_{};
    CachePadded<std::atomic<std::uint64_t>> generation_{};
    CachePadded<std::atomic<bool>> aborted_{};
};

}  // namespace sge
