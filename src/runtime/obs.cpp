#include "runtime/obs.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "runtime/env.hpp"

namespace sge::obs {

bool enabled() noexcept {
    static const bool on = env_bool("SGE_OBS", true);
    return on;
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

void JsonWriter::comma_for_value() {
    if (stack_.empty()) return;
    Frame& top = stack_.back();
    if (top.have_key) {
        // key() already placed the comma and the key itself.
        top.have_key = false;
        return;
    }
    if (!top.first) raw(",");
    top.first = false;
}

void JsonWriter::begin_object() {
    comma_for_value();
    stack_.push_back({'{'});
    raw("{");
}

void JsonWriter::end_object() {
    stack_.pop_back();
    raw("}");
}

void JsonWriter::begin_array() {
    comma_for_value();
    stack_.push_back({'['});
    raw("[");
}

void JsonWriter::end_array() {
    stack_.pop_back();
    raw("]");
}

void JsonWriter::key(std::string_view k) {
    Frame& top = stack_.back();
    if (!top.first) raw(",");
    top.first = false;
    top.have_key = true;
    out_ << '"' << json_escape(k) << "\":";
}

void JsonWriter::value(std::string_view v) {
    comma_for_value();
    out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(double v) {
    comma_for_value();
    if (!std::isfinite(v)) {
        raw("null");
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    raw(buf);
}

void JsonWriter::value(std::uint64_t v) {
    comma_for_value();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    raw(buf);
}

void JsonWriter::value(std::int64_t v) {
    comma_for_value();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    raw(buf);
}

void JsonWriter::value(bool v) {
    comma_for_value();
    raw(v ? "true" : "false");
}

void JsonWriter::value_null() {
    comma_for_value();
    raw("null");
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// ChromeTrace
// ---------------------------------------------------------------------

void ChromeTrace::set_thread_name(int tid, std::string name) {
    thread_names_.emplace_back(tid, std::move(name));
}

void ChromeTrace::add_span(int tid, std::string name, std::uint64_t start_ns,
                           std::uint64_t end_ns, Args args) {
    spans_.push_back(
        Span{tid, std::move(name), start_ns, end_ns, std::move(args)});
}

void ChromeTrace::add_counter(std::string series, std::uint64_t ts_ns,
                              Args values) {
    counters_.push_back(Counter{std::move(series), ts_ns, std::move(values)});
}

namespace {

/// Nanoseconds -> the format's microsecond timestamps, fractional part
/// kept (Chrome accepts doubles).
double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_args(JsonWriter& w, const ChromeTrace::Args& args) {
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : args) w.field(k, v);
    w.end_object();
}

}  // namespace

void ChromeTrace::write(std::ostream& out) const {
    JsonWriter w(out);
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    if (!process_name_.empty()) {
        w.begin_object();
        w.field("name", "process_name");
        w.field("ph", "M");
        w.field("pid", 0);
        w.key("args");
        w.begin_object();
        w.field("name", process_name_);
        w.end_object();
        w.end_object();
    }
    for (const auto& [tid, name] : thread_names_) {
        w.begin_object();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", 0);
        w.field("tid", tid);
        w.key("args");
        w.begin_object();
        w.field("name", name);
        w.end_object();
        w.end_object();
    }
    for (const Span& s : spans_) {
        w.begin_object();
        w.field("name", s.name);
        w.field("ph", "X");
        w.field("pid", 0);
        w.field("tid", s.tid);
        w.field("ts", us(s.start_ns));
        w.field("dur", us(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0));
        write_args(w, s.args);
        w.end_object();
    }
    for (const Counter& c : counters_) {
        w.begin_object();
        w.field("name", c.series);
        w.field("ph", "C");
        w.field("pid", 0);
        w.field("ts", us(c.ts_ns));
        write_args(w, c.values);
        w.end_object();
    }

    w.end_array();
    w.field("displayTimeUnit", "ms");
    w.end_object();
    out << "\n";
}

bool ChromeTrace::write_file(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "sge::obs: cannot write trace to '%s'\n",
                     path.c_str());
        return false;
    }
    write(out);
    return out.good();
}

}  // namespace sge::obs
