#include "concurrency/thread_team.hpp"

#include <algorithm>

#include "concurrency/spin_barrier.hpp"
#include "runtime/affinity.hpp"
#include "runtime/stats.hpp"

namespace sge {

ThreadTeam::ThreadTeam(int threads, Topology topo) : topo_(std::move(topo)) {
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        workers_.emplace_back([this, t] { worker_main(t); });
}

ThreadTeam::~ThreadTeam() {
    {
        std::lock_guard guard(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadTeam::run(const std::function<void(int)>& fn,
                     SpinBarrier* abort_barrier) {
    std::unique_lock lock(mutex_);
    job_ = &fn;
    abort_barrier_ = abort_barrier;
    remaining_ = size();
    first_error_ = nullptr;
    ++epoch_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    abort_barrier_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::worker_main(int tid) {
    // Pinning is best-effort: a refusal (cpuset, container, fault
    // injection) degrades this worker to unpinned placement — correct,
    // just less local — and is surfaced via runtime_warnings().
    const int cpu = topo_.cpu_of_thread(tid);
    if (cpu >= 0 && !pin_current_thread(cpu)) note_pin_failure(cpu);

    std::uint64_t seen_epoch = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
        SpinBarrier* abort_barrier = nullptr;
        {
            std::unique_lock lock(mutex_);
            start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
            if (shutdown_) return;
            seen_epoch = epoch_;
            job = job_;
            abort_barrier = abort_barrier_;
        }
        std::exception_ptr error;
        try {
            (*job)(tid);
        } catch (...) {
            error = std::current_exception();
            // Poison the region's barrier *before* taking the team
            // mutex so siblings spinning in arrive_and_wait are
            // released immediately and the region can finish.
            if (abort_barrier != nullptr) abort_barrier->abort();
        }
        {
            std::lock_guard guard(mutex_);
            if (error && !first_error_) first_error_ = error;
            if (--remaining_ == 0) done_cv_.notify_all();
        }
    }
}

}  // namespace sge
