#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

struct LabelPropagationOptions {
    /// Hard iteration cap (LP usually stabilises in < 10 sweeps).
    int max_iterations = 20;
    /// Tie-break / vertex-order randomisation seed.
    std::uint64_t seed = 1;
};

struct CommunityResult {
    /// community[v] = dense community id in [0, num_communities).
    std::vector<std::uint32_t> community;
    std::uint32_t num_communities = 0;
    int iterations = 0;
    bool converged = false;  ///< no label changed in the final sweep
};

/// Synchronous-free (in-place) label propagation community detection
/// (Raghavan, Albert, Kumara 2007): each vertex repeatedly adopts the
/// most frequent label among its neighbours until no label changes.
/// Deterministic for a given seed (ties broken by smallest label,
/// vertex order shuffled once up front). This is the direct
/// implementation of the paper's community-analysis motivation ([4]-[7]
/// in its introduction).
CommunityResult label_propagation(const CsrGraph& g,
                                  const LabelPropagationOptions& options = {});

}  // namespace sge
