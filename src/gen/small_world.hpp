#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sge {

/// Watts-Strogatz small-world generator: a ring lattice where each
/// vertex connects to its k nearest neighbours, with every lattice edge
/// rewired to a random endpoint with probability `rewire_probability`.
///
/// Completes the workload spectrum around the paper's families:
/// p = 0 is a pure high-diameter lattice (like the grids Xia & Prasanna
/// use), p = 1 approaches uniformly random, and intermediate p gives
/// the high-clustering/low-diameter regime where BFS frontiers stay
/// moderate but locality is poor — a distinct stress profile for the
/// engines.
struct SmallWorldParams {
    vertex_t num_vertices = 0;
    /// Each vertex links to the k/2 neighbours on each side (k rounded
    /// down to even; minimum 2).
    std::uint32_t mean_degree = 4;
    double rewire_probability = 0.1;
    std::uint64_t seed = 1;
};

/// Generates the edge list (each lattice edge emitted once). Throws
/// std::invalid_argument for probability outside [0, 1] or k >= n.
EdgeList generate_small_world(const SmallWorldParams& params);

}  // namespace sge
