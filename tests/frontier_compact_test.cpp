// Atomic-free frontier generation (src/core/frontier_compact.hpp,
// src/runtime/simd_scan.hpp) and its BfsOptions::frontier_gen wiring:
// compact-vs-atomic output equivalence across every engine and
// schedule, the compactor's exact-cover prefix-sum property, SIMD-vs-
// scalar word-scan equality (including tail words), and the counter
// invariants documented in docs/OBSERVABILITY.md.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <utility>
#include <vector>

#include "core/bfs.hpp"
#include "core/frontier_compact.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "runtime/obs.hpp"
#include "runtime/simd_scan.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

constexpr SchedulePolicy kAllPolicies[] = {SchedulePolicy::kStatic,
                                           SchedulePolicy::kEdgeWeighted,
                                           SchedulePolicy::kStealing};
constexpr FrontierGen kBothModes[] = {FrontierGen::kAtomic,
                                      FrontierGen::kCompact};

CsrGraph skewed_graph() {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 1 << 13;
    params.seed = 7;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 11);
    return csr_from_edges(edges);
}

// ---------------------------------------------------------------------
// FrontierCompactor: prefix-sum exact-cover property.
// ---------------------------------------------------------------------

TEST(FrontierCompactor, OffsetsAreExclusivePrefixSums) {
    FrontierCompactor fc;
    fc.configure(5, std::size_t{64});
    const std::size_t counts[] = {3, 0, 7, 1, 5};
    for (int t = 0; t < 5; ++t) fc.publish(t, counts[t]);
    std::size_t at = 0;
    for (int t = 0; t < 5; ++t) {
        EXPECT_EQ(fc.offset_of(t), at) << "claimant " << t;
        at += counts[t];
    }
    EXPECT_EQ(fc.total(), at);
    EXPECT_EQ(fc.total(), std::size_t{16});
}

TEST(FrontierCompactor, CopyOutTilesDestinationExactlyOnce) {
    // Staged segments must land contiguously, in claimant order, with
    // no gaps or overlaps: sum(compact_writes) == |NQ| by construction.
    FrontierCompactor fc;
    fc.configure(4, std::size_t{32});
    std::mt19937 rng(99);
    std::vector<std::vector<vertex_t>> staged(4);
    std::size_t total = 0;
    for (int t = 0; t < 4; ++t) {
        const std::size_t cnt = rng() % 33;
        for (std::size_t i = 0; i < cnt; ++i) {
            const auto v = static_cast<vertex_t>(1000 * t + i);
            fc.buffer(t)[i] = v;
            staged[static_cast<std::size_t>(t)].push_back(v);
        }
        fc.publish(t, cnt);
        total += cnt;
    }
    std::vector<vertex_t> dst(total, kInvalidVertex);
    std::size_t copied = 0;
    for (int t = 0; t < 4; ++t) copied += fc.copy_out(t, dst.data());
    EXPECT_EQ(copied, total);
    std::vector<vertex_t> expected;
    for (const auto& seg : staged)
        expected.insert(expected.end(), seg.begin(), seg.end());
    EXPECT_EQ(dst, expected);
}

TEST(FrontierCompactor, GroupedOffsetsAreRelativeToOwnGroup) {
    // Multisocket layout: claimants 0,2 feed group 0 and 1,3 feed group
    // 1; each group's offsets restart at zero (one queue per socket).
    FrontierCompactor fc;
    fc.configure(4, {16, 16, 16, 16}, {0, 1, 0, 1});
    const std::size_t counts[] = {4, 9, 6, 2};
    for (int t = 0; t < 4; ++t) fc.publish(t, counts[t]);
    EXPECT_EQ(fc.offset_of(0), 0u);
    EXPECT_EQ(fc.offset_of(2), 4u);
    EXPECT_EQ(fc.offset_of(1), 0u);
    EXPECT_EQ(fc.offset_of(3), 9u);
    EXPECT_EQ(fc.group_total(0), 10u);
    EXPECT_EQ(fc.group_total(1), 11u);
    EXPECT_EQ(fc.total(), 21u);
}

TEST(FrontierCompactor, ResetZeroesCountsButKeepsShape) {
    FrontierCompactor fc;
    fc.configure(3, std::size_t{8});
    for (int t = 0; t < 3; ++t) fc.publish(t, 5);
    EXPECT_EQ(fc.total(), 15u);
    fc.reset();
    EXPECT_EQ(fc.total(), 0u);
    EXPECT_EQ(fc.claimants(), 3);
    EXPECT_EQ(fc.buffer_capacity(0), 8u);
}

// ---------------------------------------------------------------------
// SIMD word scans: the AVX2 path must report exactly the scalar path's
// (word, mask) sequence on random bitmaps, including the tail words.
// ---------------------------------------------------------------------

using WordHits = std::vector<std::pair<std::size_t, std::uint32_t>>;

WordHits scan_unvisited(const std::vector<std::atomic<std::uint64_t>>& words,
                        std::size_t wlo, std::size_t whi, std::uint32_t epoch,
                        simd::IsaLevel isa, std::uint64_t& scanned) {
    WordHits hits;
    simd::for_each_unvisited_word(
        words.data(), wlo, whi, epoch, isa, scanned,
        [&](std::size_t i, std::uint32_t m) { hits.emplace_back(i, m); });
    return hits;
}

WordHits scan_set(const std::vector<std::atomic<std::uint64_t>>& words,
                  std::size_t wlo, std::size_t whi, std::uint32_t epoch,
                  simd::IsaLevel isa, std::uint64_t& scanned) {
    WordHits hits;
    simd::for_each_set_word(
        words.data(), wlo, whi, epoch, isa, scanned,
        [&](std::size_t i, std::uint32_t m) { hits.emplace_back(i, m); });
    return hits;
}

std::vector<std::atomic<std::uint64_t>> random_epoch_words(std::size_t n,
                                                           std::uint32_t epoch,
                                                           std::uint64_t seed) {
    // Mix of stale-epoch, current-but-empty, current-but-full, and
    // current-partial words — every skip class the scanners special-case.
    std::vector<std::atomic<std::uint64_t>> words(n);
    std::mt19937_64 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t stamp = static_cast<std::uint64_t>(epoch) << 32;
        switch (rng() % 5) {
            case 0: words[i] = (stamp - (1ULL << 32)) | (rng() & 0xFFFFFFFF); break;
            case 1: words[i] = stamp; break;
            case 2: words[i] = stamp | 0xFFFFFFFF; break;
            default: words[i] = stamp | (rng() & 0xFFFFFFFF); break;
        }
    }
    return words;
}

TEST(SimdScan, UnvisitedWordsMatchScalarOnRandomBitmaps) {
    if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{4}, std::size_t{5}, std::size_t{7},
                                std::size_t{8}, std::size_t{64},
                                std::size_t{65}, std::size_t{1000}}) {
        const std::uint32_t epoch = 3;
        const auto words = random_epoch_words(n, epoch, 17 * n);
        // Whole range plus offset sub-ranges (odd boundaries exercise
        // the scalar head/tail around the vectorized interior).
        const std::size_t starts[] = {0, n / 3};
        for (const std::size_t wlo : starts) {
            std::uint64_t scanned_scalar = 0;
            std::uint64_t scanned_avx2 = 0;
            const WordHits scalar =
                scan_unvisited(words, wlo, n, epoch, simd::IsaLevel::kScalar,
                               scanned_scalar);
            const WordHits avx2 = scan_unvisited(
                words, wlo, n, epoch, simd::IsaLevel::kAvx2, scanned_avx2);
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " wlo=" + std::to_string(wlo));
            EXPECT_EQ(scalar, avx2);
            EXPECT_EQ(scanned_scalar, n - wlo);
            EXPECT_EQ(scanned_avx2, n - wlo);
        }
    }
}

TEST(SimdScan, SetWordsMatchScalarOnRandomBitmaps) {
    if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{6}, std::size_t{9}, std::size_t{129},
          std::size_t{513}}) {
        const std::uint32_t epoch = 41;
        const auto words = random_epoch_words(n, epoch, 23 * n + 1);
        std::uint64_t scanned_scalar = 0;
        std::uint64_t scanned_avx2 = 0;
        const WordHits scalar = scan_set(words, 0, n, epoch,
                                         simd::IsaLevel::kScalar,
                                         scanned_scalar);
        const WordHits avx2 = scan_set(words, 0, n, epoch,
                                       simd::IsaLevel::kAvx2, scanned_avx2);
        SCOPED_TRACE("n=" + std::to_string(n));
        EXPECT_EQ(scalar, avx2);
        EXPECT_EQ(scanned_scalar, scanned_avx2);
    }
}

TEST(SimdScan, NonzeroWordsMatchScalarIncludingTails) {
    if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{4}, std::size_t{5}, std::size_t{100},
          std::size_t{101}, std::size_t{102}, std::size_t{103}}) {
        std::vector<std::uint64_t> words(n);
        std::mt19937_64 rng(5 * n);
        for (auto& w : words) w = (rng() % 3 == 0) ? rng() : 0;
        const auto run = [&](simd::IsaLevel isa) {
            std::vector<std::pair<std::size_t, std::uint64_t>> hits;
            std::uint64_t scanned = 0;
            simd::for_each_nonzero_u64(
                words.data(), 0, n, isa, scanned,
                [&](std::size_t i, std::uint64_t v) {
                    hits.emplace_back(i, v);
                });
            return std::pair{std::move(hits), scanned};
        };
        SCOPED_TRACE("n=" + std::to_string(n));
        EXPECT_EQ(run(simd::IsaLevel::kScalar), run(simd::IsaLevel::kAvx2));
    }
}

TEST(SimdScan, MaskHelpersHonourEpochStamps) {
    const std::uint32_t epoch = 9;
    const std::uint64_t stamp = static_cast<std::uint64_t>(epoch) << 32;
    // Stale word: every slot reads unvisited, none reads set.
    EXPECT_EQ(simd::unvisited_mask(((stamp >> 32) - 1) << 32 | 0xFFFF, epoch),
              0xFFFFFFFFu);
    EXPECT_EQ(simd::set_mask(((stamp >> 32) - 1) << 32 | 0xFFFF, epoch), 0u);
    // Current word: payload decides.
    EXPECT_EQ(simd::unvisited_mask(stamp | 0x0000FF00u, epoch), ~0x0000FF00u);
    EXPECT_EQ(simd::set_mask(stamp | 0x0000FF00u, epoch), 0x0000FF00u);
}

// ---------------------------------------------------------------------
// End-to-end: compact and atomic modes agree on every engine, schedule,
// and graph shape; levels (deterministic) must be identical, parents
// must form a valid tree in both modes.
// ---------------------------------------------------------------------

TEST(FrontierGenMode, CompactMatchesAtomicAllEnginesAllSchedules) {
    const CsrGraph graphs[] = {skewed_graph(), test::star_graph(257),
                               test::path_graph(200), test::two_cliques(40)};
    const BfsEngine engines[] = {BfsEngine::kNaive, BfsEngine::kBitmap,
                                 BfsEngine::kMultiSocket, BfsEngine::kHybrid};
    for (const CsrGraph& g : graphs) {
        const BfsResult reference = bfs(g, 0, {});  // serial
        for (const BfsEngine engine : engines) {
            for (const SchedulePolicy policy : kAllPolicies) {
                BfsResult results[2];
                for (const FrontierGen gen : kBothModes) {
                    BfsOptions options;
                    options.engine = engine;
                    options.threads = 4;
                    options.topology = Topology::emulate(2, 2, 1);
                    options.schedule = policy;
                    options.frontier_gen = gen;
                    SCOPED_TRACE(to_string(engine) + "/" + to_string(policy) +
                                 "/" + to_string(gen));
                    BfsResult& r = results[gen == FrontierGen::kCompact];
                    r = bfs(g, 0, options);
                    EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);
                    test::expect_equivalent(reference, r);
                }
                // Levels are deterministic: bit-identical across modes.
                EXPECT_EQ(results[0].level, results[1].level)
                    << to_string(engine) << "/" << to_string(policy);
            }
        }
    }
}

TEST(FrontierGenMode, HybridBottomUpLevelsAgreeAcrossModes) {
    // Force the direction flip (tiny alpha/beta make the heuristic
    // eager) so the vectorized bottom-up sweep and the compacted
    // harvest both run, then compare against the atomic path.
    const CsrGraph g = skewed_graph();
    BfsResult results[2];
    for (const FrontierGen gen : kBothModes) {
        BfsOptions options;
        options.engine = BfsEngine::kHybrid;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.hybrid_alpha = 1.0;
        options.hybrid_beta = 1e6;  // flip early, convert back late
        options.frontier_gen = gen;
        BfsResult& r = results[gen == FrontierGen::kCompact];
        r = bfs(g, 0, options);
        EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);
    }
    test::expect_equivalent(results[0], results[1]);
    EXPECT_EQ(results[0].level, results[1].level);
}

TEST(FrontierGenMode, MsBfsLaneMasksIdenticalAcrossModes) {
    const CsrGraph g = skewed_graph();
    const std::vector<vertex_t> sources = {0, 1, 2, 3, 5, 8};
    const auto run = [&](FrontierGen gen) {
        std::vector<std::uint64_t> masks(g.num_vertices() * 64, 0);
        std::mutex mu;
        MsBfsOptions options;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.frontier_gen = gen;
        const std::uint32_t levels = multi_source_bfs(
            g, sources,
            [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                std::lock_guard lock(mu);
                masks[static_cast<std::size_t>(v) * 64 + level] |= mask;
            },
            options);
        return std::pair{levels, std::move(masks)};
    };
    const auto atomic = run(FrontierGen::kAtomic);
    const auto compact = run(FrontierGen::kCompact);
    EXPECT_EQ(atomic.first, compact.first);
    EXPECT_EQ(atomic.second, compact.second);
}

// ---------------------------------------------------------------------
// Counter invariants (exact only in SGE_OBS builds; zero otherwise).
// ---------------------------------------------------------------------

TEST(FrontierGenMode, CompactWritesCoverEveryDiscoveryExactlyOnce) {
    const CsrGraph g = skewed_graph();
    const BfsEngine engines[] = {BfsEngine::kNaive, BfsEngine::kBitmap,
                                 BfsEngine::kMultiSocket};
    for (const BfsEngine engine : engines) {
        BfsOptions options;
        options.engine = engine;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.frontier_gen = FrontierGen::kCompact;
        options.collect_stats = true;
        const BfsResult result = bfs(g, 0, options);
        SCOPED_TRACE(to_string(engine));
        ASSERT_FALSE(result.level_stats.empty());
        std::uint64_t writes = 0;
        std::uint64_t wins = 0;
        for (std::size_t d = 0; d < result.level_stats.size(); ++d) {
            const BfsLevelStats& s = result.level_stats[d];
            writes += s.compact_writes;
            wins += s.atomic_wins;
            // Level d's copy-out builds level d+1's frontier.
            if (obs::compiled_in() && obs::enabled() &&
                d + 1 < result.level_stats.size()) {
                EXPECT_EQ(s.compact_writes,
                          result.level_stats[d + 1].frontier_size)
                    << "level " << d;
            }
        }
        if (obs::compiled_in() && obs::enabled()) {
            // sum(compact_writes) == |NQ| summed over levels: every
            // discovery lands in a next-queue exactly once (the root is
            // seeded, not discovered). The visited-claim atomics are
            // untouched by the knob, so the n-1 wins invariant from the
            // atomic mode must survive verbatim.
            EXPECT_EQ(writes, result.vertices_visited - 1);
            EXPECT_EQ(wins, result.vertices_visited - 1);
        } else {
            EXPECT_EQ(writes, 0u);
            EXPECT_EQ(wins, 0u);
        }
    }
}

TEST(FrontierGenMode, AtomicModeReportsNoCompactionOrSimdWork) {
    const CsrGraph g = skewed_graph();
    for (const BfsEngine engine :
         {BfsEngine::kNaive, BfsEngine::kBitmap, BfsEngine::kMultiSocket,
          BfsEngine::kHybrid}) {
        BfsOptions options;
        options.engine = engine;
        options.threads = 4;
        options.topology = Topology::emulate(2, 2, 1);
        options.frontier_gen = FrontierGen::kAtomic;
        options.collect_stats = true;
        const BfsResult result = bfs(g, 0, options);
        SCOPED_TRACE(to_string(engine));
        for (const BfsLevelStats& s : result.level_stats) {
            EXPECT_EQ(s.compact_writes, 0u);
            EXPECT_EQ(s.prefix_sum_ns, 0u);
            EXPECT_EQ(s.simd_words_scanned, 0u);
        }
    }
}

TEST(FrontierGenMode, HybridCompactCountsSimdWordsInBottomUpLevels) {
    if (!obs::compiled_in() || !obs::enabled())
        GTEST_SKIP() << "needs SGE_OBS build with SGE_OBS != 0";
    const CsrGraph g = skewed_graph();
    BfsOptions options;
    options.engine = BfsEngine::kHybrid;
    options.threads = 4;
    options.topology = Topology::emulate(2, 2, 1);
    options.hybrid_alpha = 1.0;
    options.hybrid_beta = 4.0;
    options.frontier_gen = FrontierGen::kCompact;
    options.collect_stats = true;
    const BfsResult result = bfs(g, 0, options);
    std::uint64_t simd_words = 0;
    for (const BfsLevelStats& s : result.level_stats)
        simd_words += s.simd_words_scanned;
    // At least one bottom-up level ran (alpha=1 flips on the first
    // explosive level), and each one sweeps ceil(n/32) words spread
    // across the claimed ranges.
    EXPECT_GT(simd_words, 0u);
}

}  // namespace
}  // namespace sge
