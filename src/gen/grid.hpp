#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sge {

/// Regular 2-D grid graphs, the workload Xia & Prasanna [19] report on
/// ("8-Grid", "16-Grid" — Table III). Vertices are lattice points of a
/// width x height mesh; `diagonal` adds the 4 diagonal neighbours
/// (8-connectivity), `wrap` makes the mesh a torus. Grids are the
/// antithesis of the random workloads: maximal locality, long BFS
/// frontiers of nearly constant size — useful for testing the engines'
/// behaviour when the frontier never explodes.
struct GridParams {
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    bool diagonal = false;
    bool wrap = false;
};

/// Generates the edge list with each undirected lattice edge emitted
/// once (builder symmetrizes). Throws std::invalid_argument when
/// width * height exceeds the vertex id space.
EdgeList generate_grid(const GridParams& params);

}  // namespace sge
