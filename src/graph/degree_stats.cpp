#include "graph/degree_stats.hpp"

#include <bit>
#include <limits>
#include <sstream>

namespace sge {

DegreeStats compute_degree_stats(const CsrGraph& g) {
    DegreeStats stats;
    const vertex_t n = g.num_vertices();
    if (n == 0) return stats;

    stats.min_degree = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t total = 0;
    for (vertex_t v = 0; v < n; ++v) {
        const std::uint64_t d = g.degree(v);
        total += d;
        stats.min_degree = std::min(stats.min_degree, d);
        stats.max_degree = std::max(stats.max_degree, d);
        if (d == 0) ++stats.isolated_vertices;
        const std::size_t bucket = d < 2 ? 0 : std::bit_width(d) - 1;
        if (stats.log2_histogram.size() <= bucket)
            stats.log2_histogram.resize(bucket + 1, 0);
        ++stats.log2_histogram[bucket];
    }
    stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
    return stats;
}

std::string DegreeStats::describe() const {
    std::ostringstream out;
    out << "degree min=" << min_degree << " max=" << max_degree
        << " mean=" << mean_degree << " isolated=" << isolated_vertices;
    return out.str();
}

}  // namespace sge
