// Figure 6: uniformly random graphs on the dual-socket Nehalem EP —
// (a) processing rates, (b) scalability, (c) sensitivity to graph size.
//
// Paper scale: 32 M vertices, 256 M - 1 B edges, 1..16 threads, rates
// of 200-800 ME/s. CI scale: 2^16 vertices at the same arities (8, 16,
// 32); grow with SGE_SCALE / SGE_FULL.

#include "fig_rate_suite.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 6: uniformly random graphs, Nehalem EP model", "Fig. 6a/b/c");

    RateSuiteConfig cfg;
    cfg.figure = "Figure 6";
    cfg.slug = "fig06_uniform_ep";
    cfg.family = "uniform";
    cfg.topology = Topology::nehalem_ep();
    cfg.threads = {1, 2, 4, 8, 16};
    cfg.base_vertices = 1 << 16;
    cfg.arities = {8, 16, 32};
    run_rate_suite(cfg);

    std::printf(
        "\npaper's shape: near-linear scaling to 8 cores, SMT adds a further "
        "bump to 16\nthreads; higher arity -> higher rate; rate dips mildly "
        "as vertex count grows\n(larger random-access working set).\n");
    return 0;
}
