#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analytics/sssp.hpp"
#include "graph/weighted.hpp"

namespace sge {

/// Admissible heuristic: a lower bound on the remaining cost from a
/// vertex to the goal. h(goal) must be 0; overestimates void the
/// optimality guarantee (the implementation still terminates and
/// returns *a* path).
using HeuristicFn = std::function<dist_t(vertex_t)>;

/// Result of a goal-directed search.
struct AstarResult {
    bool found = false;
    dist_t distance = kInfiniteDistance;
    std::vector<vertex_t> path;  ///< start ... goal when found
    std::uint64_t vertices_expanded = 0;
    std::uint64_t edges_relaxed = 0;
};

/// A* — the last of the intro's BFS-derived searches ("best-first
/// search, uniform-cost search, greedy-search and A*, which are
/// commonly used in motion planning"). Uniform-cost search with the
/// frontier ordered by g + h; with h == 0 it *is* Dijkstra, with a
/// tight h it expands a corridor toward the goal. Throws
/// std::out_of_range for bad endpoints.
AstarResult astar(const WeightedCsrGraph& g, vertex_t start, vertex_t goal,
                  const HeuristicFn& heuristic);

/// Convenience: h == 0 (uniform-cost search with early goal exit).
AstarResult uniform_cost_search(const WeightedCsrGraph& g, vertex_t start,
                                vertex_t goal);

/// Admissible heuristics for graphs produced by generate_grid with
/// row-major ids (vertex = y * width + x):
///  * Manhattan x min edge weight — admissible on 4-connected grids;
///  * Chebyshev x min edge weight — admissible also with diagonals.
HeuristicFn grid_manhattan_heuristic(std::uint32_t width, vertex_t goal,
                                     weight_t min_edge_weight);
HeuristicFn grid_chebyshev_heuristic(std::uint32_t width, vertex_t goal,
                                     weight_t min_edge_weight);

}  // namespace sge
