#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sge {

/// SSCA#2-style clustered graph (DARPA HPCS Scalable Synthetic Compact
/// Applications benchmark #2, also shipped with GTgraph). Vertices are
/// grouped into cliques of random size up to `max_clique_size`;
/// intra-clique edges are complete, and each vertex sprays a few
/// inter-clique edges whose endpoints prefer nearby cliques. Figure 10
/// of the paper runs "SSCA#2-representative" throughput experiments —
/// one BFS instance per socket on independent graphs.
struct Ssca2Params {
    vertex_t num_vertices = 0;
    std::uint32_t max_clique_size = 16;
    /// Expected inter-clique out-edges per vertex.
    std::uint32_t inter_clique_edges = 3;
    std::uint64_t seed = 1;
};

/// Generates the directed edge list; deterministic per seed.
EdgeList generate_ssca2(const Ssca2Params& params);

}  // namespace sge
