#include <atomic>
#include <bit>
#include <cassert>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "graph/partition.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/simd_scan.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

namespace {

/// Direction of one BFS level.
enum class Direction { kTopDown, kBottomUp };

/// Extension engine: direction-optimizing BFS (Beamer, Asanović,
/// Patterson, SC'12) layered on the paper's substrates.
///
/// Top-down levels run exactly like Algorithm 2. When the frontier's
/// pending out-edges exceed 1/alpha of the still-unexplored edges, the
/// traversal flips *bottom-up*: every unvisited vertex scans its own
/// adjacency for any parent in the current frontier and stops at the
/// first hit. On low-diameter power-law graphs (the paper's R-MAT
/// workload) the two or three explosive middle levels touch a small
/// fraction of their edges this way. The engine flips back once the
/// frontier shrinks below n/beta.
///
/// Requires a symmetric graph (the builder default): bottom-up uses
/// out-edges as in-edges. BfsResult::edges_traversed keeps the library
/// convention (sum of degrees over visited vertices) so rates stay
/// comparable across engines; BfsLevelStats::edges_scanned records the
/// work actually done, which is the point of the optimization.
///
/// Workspace reuse: the visited set and both frontier bitmaps are
/// epoch-versioned, so the per-level `clear_all` of the old frontier
/// bits is an O(1) epoch bump, and back-to-back queries skip every O(n)
/// re-initialisation. The [0, n) range plan survives across queries on
/// the same graph (ws.range_planned) — only its cursors rewind.
template <class Graph>
void bfs_hybrid_impl(const Graph& g, vertex_t root, const BfsOptions& options,
                     ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    const int sockets = team.sockets_used();
    const std::size_t chunk = options.chunk_size < 1 ? 1 : options.chunk_size;
    const std::uint64_t total_edges_x2 = g.num_edges();
    const SocketPartition partition(n, sockets);

    reset_result(result, n, options.compute_levels);

    VersionedBitmap& visited = ws.visited;
    // Frontier as queue (top-down) and as bitmap (bottom-up); both kept,
    // converted lazily on direction flips.
    FrontierQueue* const queues = ws.queues;
    VersionedBitmap* const frontier_bits = ws.frontier_bits;
    SpinBarrier barrier(threads);

    // Top-down levels schedule the frontier queue; bottom-up levels (and
    // the bits->queue harvest) schedule the whole vertex range. The range
    // plan's weights never change, so it is cut once — at the first
    // direction flip on this graph — and only its cursors rewind per
    // level (and per query).
    WorkQueue& wq = *ws.wq;
    WorkQueue& range_wq = *ws.range_wq;
    const std::size_t range_chunk = resolve_bottomup_chunk(options, n, threads);

    // Compact frontier generation (docs/ALGORITHMS.md "Frontier
    // generation"): top-down levels stage discoveries in per-thread
    // buffers and reach NQ via prefix-sum copy-out; bottom-up levels
    // word-scan the visited bitmap (whole-word skips, vectorized when
    // the CPU allows); the bits->queue harvest compacts straight into
    // the queue slots. The visited-claim atomics remain in both modes.
    const bool compact = options.frontier_gen == FrontierGen::kCompact;
    FrontierCompactor& fc = ws.compactor;
    const simd::IsaLevel isa = simd::active_level();

    struct Shared {
        std::atomic<std::uint64_t> visited_count{0};
        // Frontier statistics for the direction heuristic, re-zeroed by
        // thread 0 each level.
        std::atomic<std::uint64_t> next_frontier_size{0};
        std::atomic<std::uint64_t> next_frontier_degree{0};
        std::atomic<std::uint64_t> explored_degree{0};
        int current = 0;
        Direction direction = Direction::kTopDown;
        bool convert_to_bits = false;
        bool convert_to_queue = false;
        bool done = false;
        bool cancelled = false;  // written by tid 0 between barriers
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
        std::uint64_t frontier_size = 1;
    } shared;

    LevelAccumLog& stats = ws.accum;
    acquire_level_slot(stats, 0).frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool double_check = options.bitmap_double_check;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        return "level=" +
               std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
               " q0=" + std::to_string(queues[0].size()) +
               " q1=" + std::to_string(queues[1].size()) + " visited=" +
               std::to_string(
                   shared.visited_count.load(std::memory_order_relaxed));
    });

#ifndef NDEBUG
    const std::uint64_t allocs_before =
        aligned_alloc_count().load(std::memory_order_relaxed);
#endif
    WallTimer timer;
    team.run([&](int tid) {
        // No init pass: the workspace's epoch bumps already cleared the
        // visited and frontier bitmaps; unreached parent/level slots are
        // filled post-run.
        if (tid == 0) {
            visited.test_and_set(root);
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0].push_one(root);
            frontier_bits[0].test_and_set(root);
            shared.visited_count.fetch_add(1, std::memory_order_relaxed);
            shared.explored_degree.fetch_add(g.degree(root),
                                             std::memory_order_relaxed);
            plan_frontier(wq, queues[0].data(), queues[0].size(), g,
                          options.schedule, chunk);
        }
        if (!barrier.arrive_and_wait()) return;

        LocalBatch<vertex_t>& staged =
            ws.scratch[static_cast<std::size_t>(tid)].staged;
        vertex_t* const cbuf = compact ? fc.buffer(tid) : nullptr;
        level_t depth = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            // Captured once so every barrier-count decision below (the
            // compact copy-out runs only after top-down levels) branches
            // on the same value on every thread.
            const Direction dir = shared.direction;
            FrontierQueue& cq = queues[cur];
            FrontierQueue& nq = queues[1 - cur];
            VersionedBitmap& fb_cur = frontier_bits[cur];
            VersionedBitmap& fb_next = frontier_bits[1 - cur];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's acquire between the barriers.
            LevelAccum& slot = stats[depth];
            std::uint64_t discovered = 0;
            std::uint64_t discovered_degree = 0;

            std::size_t staged_count = 0;  // compact-mode discoveries
            if (dir == Direction::kTopDown) {
                std::size_t begin = 0;
                std::size_t end = 0;
                WorkQueue::Claim cl;
                while ((cl = wq.claim(tid, begin, end)) !=
                       WorkQueue::Claim::kNone) {
                    counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                    for (std::size_t i = begin; i < end; ++i) {
                        const vertex_t u = cq[i];
                        // Keep the next vertex's adjacency metadata in
                        // flight while scanning this one (Section III's
                        // decoupling of computation and memory requests).
                        if (i + 1 < end) g.prefetch_adjacency(cq[i + 1]);
                        scan_adjacency(
                            g, u, counters,
                            [&](vertex_t w) {
                                prefetch_read(visited.word_addr(w));
                            },
                            [&](vertex_t v) {
                                ++counters.bitmap_checks;
                                if (double_check && visited.test(v)) {
                                    counters.count_skip();
                                    return;
                                }
                                ++counters.atomic_ops;
                                if (visited.test_and_set(v)) return;
                                counters.count_win();
                                parent[v] = u;
                                if (level != nullptr) level[v] = depth + 1;
                                ++discovered;
                                discovered_degree += g.degree(v);
                                if (compact) {
                                    cbuf[staged_count++] = v;  // plain store
                                } else if (staged.push(v)) {
                                    nq.push_batch(staged.data(), staged.size());
                                    staged.clear();
                                }
                            });
                    }
                }
                if (compact) {
                    fc.publish(tid, staged_count);
                } else if (!staged.empty()) {
                    nq.push_batch(staged.data(), staged.size());
                    staged.clear();
                }
            } else {
                // Bottom-up: claim vertex ranges; each unvisited vertex
                // hunts for a frontier parent in its own adjacency and
                // stops at the first hit.
                std::size_t base = 0;
                std::size_t stop = 0;
                WorkQueue::Claim cl;
                // The early-exit probe: scan_adjacency_until accounts
                // edges_scanned per examined neighbour; the callback
                // returns false to stop at the first frontier parent.
                const auto hunt = [&](vertex_t v) {
                    scan_adjacency_until(g, v, counters, [&](vertex_t w) {
                        ++counters.bitmap_checks;
                        if (!fb_cur.test(w)) return true;
                        // v's chunk is claimed exactly once, so the
                        // test_and_set cannot lose; it still provides
                        // the release ordering the next level needs.
                        ++counters.atomic_ops;
                        visited.test_and_set(v);
                        counters.count_win();
                        parent[v] = w;
                        if (level != nullptr) level[v] = depth + 1;
                        ++discovered;
                        discovered_degree += g.degree(v);
                        ++counters.atomic_ops;
                        fb_next.test_and_set(v);
                        return false;
                    });
                };
                if (compact) {
                    // Vectorized sweep: test 32 visited slots per word
                    // (whole stale/full words cost one compare — or a
                    // quarter of one under AVX2) and ctz-iterate only the
                    // surviving unvisited bits. Visited vertices skipped
                    // wholesale are accounted in simd_words_scanned, not
                    // bitmap_skips; each *emitted* vertex still counts
                    // one bitmap_check like the scalar path.
                    constexpr std::size_t W = VersionedBitmap::kSlotsPerWord;
                    const std::uint32_t vepoch = visited.epoch();
                    const std::atomic<std::uint64_t>* const vwords =
                        visited.words();
                    std::uint64_t words_local = 0;
                    while ((cl = range_wq.claim(tid, base, stop)) !=
                           WorkQueue::Claim::kNone) {
                        counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                        const std::size_t wlo = base / W;
                        const std::size_t whi = (stop + W - 1) / W;
                        simd::for_each_unvisited_word(
                            vwords, wlo, whi, vepoch, isa, words_local,
                            [&](std::size_t wi, std::uint32_t mask) {
                                // Clip boundary words to [base, stop):
                                // they may straddle a neighbouring claim.
                                if (wi == wlo && base % W != 0)
                                    mask &= ~std::uint32_t{0} << (base % W);
                                if (wi + 1 == whi && stop % W != 0)
                                    mask &=
                                        (std::uint32_t{1} << (stop % W)) - 1;
                                simd::for_each_bit(mask, [&](unsigned b) {
                                    ++counters.bitmap_checks;
                                    hunt(static_cast<vertex_t>(wi * W + b));
                                });
                            });
                    }
                    counters.count_simd_words(words_local);
                } else {
                    while ((cl = range_wq.claim(tid, base, stop)) !=
                           WorkQueue::Claim::kNone) {
                        counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                        for (std::size_t vi = base; vi < stop; ++vi) {
                            const auto v = static_cast<vertex_t>(vi);
                            ++counters.bitmap_checks;
                            if (visited.test(v)) {
                                counters.count_skip();
                                continue;
                            }
                            hunt(v);
                        }
                    }
                }
            }

            shared.visited_count.fetch_add(discovered, std::memory_order_relaxed);
            shared.next_frontier_size.fetch_add(discovered,
                                                std::memory_order_relaxed);
            shared.next_frontier_degree.fetch_add(discovered_degree,
                                                  std::memory_order_relaxed);
            shared.explored_degree.fetch_add(discovered_degree,
                                             std::memory_order_relaxed);
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (compact && dir == Direction::kTopDown) {
                // Prefix-sum copy-out into NQ (counts barrier-ordered);
                // extra barrier so tid 0's set_size sees every segment.
                // Bottom-up levels produce no queue, so they keep the
                // two-barrier structure.
                compact_copy_out(fc, tid, nq.slots_mut(), slot);
                if (!timed_wait(barrier, slot, collect)) return;
            }

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                const std::uint64_t next_size =
                    shared.next_frontier_size.load(std::memory_order_relaxed);
                const std::uint64_t next_degree =
                    shared.next_frontier_degree.load(std::memory_order_relaxed);
                const std::uint64_t unexplored =
                    total_edges_x2 -
                    shared.explored_degree.load(std::memory_order_relaxed);

                Direction next = shared.direction;
                if (shared.direction == Direction::kTopDown) {
                    // Flip only when the frontier's pending edges dwarf
                    // the unexplored pool AND the frontier itself is
                    // wide enough that an O(n) bottom-up sweep can pay
                    // off — the size guard prevents tail oscillation on
                    // high-diameter graphs once the edge pool runs dry.
                    if (static_cast<double>(next_degree) >
                            static_cast<double>(unexplored) /
                                options.hybrid_alpha &&
                        static_cast<double>(next_size) >
                            static_cast<double>(n) / options.hybrid_beta)
                        next = Direction::kBottomUp;
                } else {
                    if (static_cast<double>(next_size) <
                        static_cast<double>(n) / options.hybrid_beta)
                        next = Direction::kTopDown;
                }

                shared.convert_to_bits =
                    next == Direction::kBottomUp &&
                    shared.direction == Direction::kTopDown;
                shared.convert_to_queue =
                    next == Direction::kTopDown &&
                    shared.direction == Direction::kBottomUp;

                cq.reset();
                if (compact && dir == Direction::kTopDown)
                    nq.set_size(fc.total());
                // O(1) "clear": stale-epoch words read as unset. The
                // physically cleared word count (wraparound only) feeds
                // the same counter as the per-query resets.
                ws.stats.reset_words_touched += fb_cur.advance_epoch();
                shared.current = 1 - cur;
                shared.direction = next;
                shared.done = next_size == 0;
                shared.frontier_size = next_size;
                shared.next_frontier_size.store(0, std::memory_order_relaxed);
                shared.next_frontier_degree.store(0, std::memory_order_relaxed);
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done && poll_cancel(options)) {
                    shared.cancelled = true;
                    shared.done = true;
                    // The conversion phases below are skipped too: every
                    // worker breaks out of the level loop at the next
                    // barrier before reaching them.
                    shared.convert_to_bits = false;
                    shared.convert_to_queue = false;
                }
                if (!shared.done) {
                    acquire_level_slot(stats, depth + 1).frontier_size =
                        next_size;
                    // Schedule the next level. A queue-borne frontier is
                    // re-cut per level; the [0, n) range plan is cut once
                    // and merely rewound (used by both the bottom-up scan
                    // and the bits->queue harvest). After a harvest the
                    // queue does not exist yet — it is planned in the
                    // conversion phase below instead.
                    if (next == Direction::kTopDown &&
                        !shared.convert_to_queue) {
                        plan_frontier(wq, queues[1 - cur].data(),
                                      queues[1 - cur].size(), g,
                                      options.schedule, chunk);
                        // Bottom-up levels sweep the whole vertex range,
                        // so only queue-borne (top-down) frontiers are
                        // worth handing to the paged prefetcher.
                        prefetch_next_frontier(g, queues[1 - cur].data(),
                                               queues[1 - cur].size());
                    }
                    if (next == Direction::kBottomUp ||
                        shared.convert_to_queue) {
                        if (!ws.range_planned) {
                            plan_vertex_range(range_wq, n, g, options.schedule,
                                              range_chunk);
                            ws.range_planned = true;
                        } else {
                            range_wq.reset_cursors();
                        }
                    }
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;

            // Representation conversion phases (both threads-parallel).
            // Their barrier waits land in the level just completed (the
            // slot reference is still valid); the conversion work itself
            // shows up as the inter-span gap in the trace.
            if (shared.convert_to_bits) {
                // nq is now the current queue (after the swap): mirror it
                // into the current frontier bitmap.
                FrontierQueue& now_cq = queues[shared.current];
                VersionedBitmap& now_fb = frontier_bits[shared.current];
                std::size_t begin = 0;
                std::size_t end = 0;
                while (now_cq.next_chunk(chunk, begin, end))
                    for (std::size_t i = begin; i < end; ++i)
                        now_fb.test_and_set(now_cq[i]);
                // The mirroring consumed now_cq's scan cursor; that is
                // fine — the bottom-up level never reads the queue, and
                // the end-of-level reset rewinds it before any reuse.
                if (!timed_wait(barrier, slot, collect)) return;
            } else if (shared.convert_to_queue) {
                // The bottom-up level filled fb (current) but no queue:
                // harvest set bits into the current queue.
                FrontierQueue& now_cq = queues[shared.current];
                VersionedBitmap& now_fb = frontier_bits[shared.current];
                if (compact) {
                    // Compacted harvest over fixed word slices, two
                    // passes. Pass 1 popcounts this thread's slice of
                    // the (now quiescent) frontier bitmap; the barrier
                    // orders the counts, so pass 2 can write vertex ids
                    // straight into a disjoint queue segment — the queue
                    // comes out in ascending vertex order with zero
                    // atomics, deterministically.
                    constexpr std::size_t W = VersionedBitmap::kSlotsPerWord;
                    const std::uint32_t fepoch = now_fb.epoch();
                    const std::atomic<std::uint64_t>* const fwords =
                        now_fb.words();
                    const auto [fwlo, fwhi] =
                        split_range(now_fb.num_words(), threads, tid);
                    std::uint64_t words_local = 0;
                    std::size_t found = 0;
                    simd::for_each_set_word(
                        fwords, fwlo, fwhi, fepoch, isa, words_local,
                        [&](std::size_t, std::uint32_t mask) {
                            found += static_cast<unsigned>(
                                std::popcount(mask));
                        });
                    fc.publish(tid, found);
                    if (!timed_wait(barrier, slot, collect)) return;
                    WallTimer harvest_timer;
                    vertex_t* out = now_cq.slots_mut() + fc.offset_of(tid);
                    simd::for_each_set_word(
                        fwords, fwlo, fwhi, fepoch, isa, words_local,
                        [&](std::size_t wi, std::uint32_t mask) {
                            simd::for_each_bit(mask, [&](unsigned b) {
                                *out++ = static_cast<vertex_t>(wi * W + b);
                            });
                        });
                    note_compaction(slot, harvest_timer.nanoseconds(), found);
                    note_simd_words(slot, words_local);
                    if (!timed_wait(barrier, slot, collect)) return;
                    // The harvested queue only exists now: size it and
                    // cut its plan for the top-down level about to start.
                    if (tid == 0) {
                        now_cq.set_size(fc.total());
                        plan_frontier(wq, now_cq.data(), now_cq.size(), g,
                                      options.schedule, chunk);
                        prefetch_next_frontier(g, now_cq.data(),
                                               now_cq.size());
                    }
                    if (!timed_wait(barrier, slot, collect)) return;
                } else {
                    std::size_t base = 0;
                    std::size_t stop = 0;
                    while (range_wq.claim(tid, base, stop) !=
                           WorkQueue::Claim::kNone) {
                        for (std::size_t vi = base; vi < stop; ++vi) {
                            if (!now_fb.test(vi)) continue;
                            if (staged.push(static_cast<vertex_t>(vi))) {
                                now_cq.push_batch(staged.data(),
                                                  staged.size());
                                staged.clear();
                            }
                        }
                    }
                    if (!staged.empty()) {
                        now_cq.push_batch(staged.data(), staged.size());
                        staged.clear();
                    }
                    if (!timed_wait(barrier, slot, collect)) return;
                    // The harvested queue only exists now: cut its plan
                    // for the top-down level about to start.
                    if (tid == 0) {
                        plan_frontier(wq, now_cq.data(), now_cq.size(), g,
                                      options.schedule, chunk);
                        prefetch_next_frontier(g, now_cq.data(),
                                               now_cq.size());
                    }
                    if (!timed_wait(barrier, slot, collect)) return;
                }
            }
            ++depth;
        }

        // Unreached sentinels for this socket's slice (replaces the old
        // pre-init pass; writes only unvisited slots).
        {
            const int my = team.socket_of(tid);
            const auto [lo, hi] = partition.range(my);
            const auto [b, e] = split_range(
                hi - lo, ws.socket_threads[static_cast<std::size_t>(my)],
                ws.rank_in_socket[static_cast<std::size_t>(tid)]);
            fill_unreached(visited, lo + b, lo + e, parent, level);
        }
    }, &barrier);
#ifndef NDEBUG
    // A prepared workspace makes the traversal allocation-free.
    assert(aligned_alloc_count().load(std::memory_order_relaxed) ==
           allocs_before);
#endif
    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    finish_watchdog(watchdog, "bfs_hybrid", levels,
                    shared.visited_count.load(std::memory_order_relaxed));
    if (shared.cancelled)
        throw_cancelled("bfs_hybrid", levels,
                        shared.visited_count.load(std::memory_order_relaxed));
    result.seconds = timer.seconds();
    spans.collect_into(result);

    result.vertices_visited = shared.visited_count.load(std::memory_order_relaxed);
    // Library convention: ma = sum of degrees over visited vertices, so
    // rates are comparable across engines regardless of how much work
    // the bottom-up levels skipped.
    result.edges_traversed = shared.explored_degree.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
}

}  // namespace

void bfs_hybrid(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_hybrid_impl(g, root, options, team, ws, result);
}

void bfs_hybrid(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result) {
    bfs_hybrid_impl(g, root, options, team, ws, result);
}

void bfs_hybrid(const PagedGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_hybrid_impl(g, root, options, team, ws, result);
}

}  // namespace sge::detail
