#pragma once

namespace sge {

/// Prefetch locality hints, mirroring _MM_HINT_T0..NTA. The paper relies
/// on carefully placed _mm_prefetch intrinsics to overlap channel traffic
/// with computation (Section III); __builtin_prefetch emits the same
/// PREFETCHT* instructions and stays portable.
enum class PrefetchHint : int {
    kNonTemporal = 0,  ///< bypass cache hierarchy where supported
    kLow = 1,          ///< L3
    kModerate = 2,     ///< L2 and up
    kHigh = 3,         ///< all cache levels (T0)
};

/// Hints the hardware prefetcher to pull `addr` for reading.
template <PrefetchHint Hint = PrefetchHint::kHigh>
inline void prefetch_read(const void* addr) noexcept {
    __builtin_prefetch(addr, /*rw=*/0, static_cast<int>(Hint));
}

/// Hints the hardware prefetcher to pull `addr` for writing.
template <PrefetchHint Hint = PrefetchHint::kHigh>
inline void prefetch_write(const void* addr) noexcept {
    __builtin_prefetch(addr, /*rw=*/1, static_cast<int>(Hint));
}

}  // namespace sge
