#include "stream/incremental_bfs.hpp"

#include <stdexcept>

namespace sge {

IncrementalBfs::IncrementalBfs(const DynamicGraph& graph, vertex_t root)
    : graph_(graph), root_(root) {
    if (root >= graph.num_vertices())
        throw std::out_of_range("IncrementalBfs: root out of range");
    rebuild();
}

void IncrementalBfs::rebuild() {
    const vertex_t n = graph_.num_vertices();
    level_.assign(n, kInvalidLevel);
    parent_.assign(n, kInvalidVertex);
    reached_ = 0;

    std::vector<vertex_t> queue{root_};
    level_[root_] = 0;
    parent_[root_] = root_;
    reached_ = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const vertex_t u = queue[head];
        for (const vertex_t v : graph_.neighbors(u)) {
            if (level_[v] != kInvalidLevel) continue;
            level_[v] = level_[u] + 1;
            parent_[v] = u;
            ++reached_;
            queue.push_back(v);
        }
    }
}

void IncrementalBfs::on_vertex_added() {
    while (level_.size() < graph_.num_vertices()) {
        level_.push_back(kInvalidLevel);
        parent_.push_back(kInvalidVertex);
    }
}

void IncrementalBfs::bfs_wave(std::vector<vertex_t>& queue,
                              std::size_t& changed) {
    // Standard decrease-only relaxation wave: a vertex enters the queue
    // when its level just dropped; its neighbours re-check.
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const vertex_t u = queue[head];
        for (const vertex_t v : graph_.neighbors(u)) {
            const level_t candidate = level_[u] + 1;
            if (level_[v] != kInvalidLevel && level_[v] <= candidate) continue;
            if (level_[v] == kInvalidLevel) ++reached_;
            level_[v] = candidate;
            parent_[v] = u;
            ++changed;
            queue.push_back(v);
        }
    }
    queue.clear();
}

std::size_t IncrementalBfs::on_edge_added(vertex_t u, vertex_t v) {
    if (u >= level_.size() || v >= level_.size())
        throw std::out_of_range("IncrementalBfs: endpoint out of range "
                                "(did you call on_vertex_added?)");

    const bool u_reached = level_[u] != kInvalidLevel;
    const bool v_reached = level_[v] != kInvalidLevel;
    if (!u_reached && !v_reached) return 0;  // still disconnected from root

    std::size_t changed = 0;
    std::vector<vertex_t> queue;
    if (u_reached && (!v_reached || level_[u] + 1 < level_[v])) {
        if (!v_reached) ++reached_;
        level_[v] = level_[u] + 1;
        parent_[v] = u;
        ++changed;
        queue.push_back(v);
    } else if (v_reached && (!u_reached || level_[v] + 1 < level_[u])) {
        if (!u_reached) ++reached_;
        level_[u] = level_[v] + 1;
        parent_[u] = v;
        ++changed;
        queue.push_back(u);
    }
    if (!queue.empty()) bfs_wave(queue, changed);
    return changed;
}

}  // namespace sge
