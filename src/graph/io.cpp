#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sge {

namespace {

constexpr char kMagic[8] = {'S', 'G', 'E', 'C', 'S', 'R', '0', '1'};
constexpr char kWeightedMagic[8] = {'S', 'G', 'E', 'W', 'S', 'R', '0', '1'};

void write_raw(std::ofstream& out, const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
    if (!out) throw std::runtime_error("write_csr: short write");
}

void read_raw(std::ifstream& in, void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes)
        throw std::runtime_error("read_csr: truncated file");
}

}  // namespace

void write_csr(const CsrGraph& g, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_csr: cannot open " + path);

    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    write_raw(out, kMagic, sizeof(kMagic));
    write_raw(out, &n, sizeof(n));
    write_raw(out, &m, sizeof(m));
    write_raw(out, g.offsets().data(), g.offsets().size() * sizeof(edge_offset_t));
    write_raw(out, g.targets().data(), g.targets().size() * sizeof(vertex_t));
}

CsrGraph read_csr(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_csr: cannot open " + path);

    char magic[8];
    read_raw(in, magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("read_csr: bad magic in " + path);

    std::uint64_t n = 0;
    std::uint64_t m = 0;
    read_raw(in, &n, sizeof(n));
    read_raw(in, &m, sizeof(m));
    if (n >= kInvalidVertex)
        throw std::runtime_error("read_csr: vertex count out of range");

    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(m));
    read_raw(in, offsets.data(), offsets.size() * sizeof(edge_offset_t));
    read_raw(in, targets.data(), targets.size() * sizeof(vertex_t));

    CsrGraph g(std::move(offsets), std::move(targets));
    if (!g.well_formed())
        throw std::runtime_error("read_csr: file is not a well-formed CSR: " + path);
    return g;
}

void write_weighted_csr(const WeightedCsrGraph& g, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_weighted_csr: cannot open " + path);

    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    write_raw(out, kWeightedMagic, sizeof(kWeightedMagic));
    write_raw(out, &n, sizeof(n));
    write_raw(out, &m, sizeof(m));
    write_raw(out, g.graph().offsets().data(),
              g.graph().offsets().size() * sizeof(edge_offset_t));
    write_raw(out, g.graph().targets().data(),
              g.graph().targets().size() * sizeof(vertex_t));
    write_raw(out, g.all_weights().data(),
              g.all_weights().size() * sizeof(weight_t));
}

WeightedCsrGraph read_weighted_csr(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_weighted_csr: cannot open " + path);

    char magic[8];
    read_raw(in, magic, sizeof(magic));
    if (std::memcmp(magic, kWeightedMagic, sizeof(kWeightedMagic)) != 0)
        throw std::runtime_error("read_weighted_csr: bad magic in " + path);

    std::uint64_t n = 0;
    std::uint64_t m = 0;
    read_raw(in, &n, sizeof(n));
    read_raw(in, &m, sizeof(m));
    if (n >= kInvalidVertex)
        throw std::runtime_error("read_weighted_csr: vertex count out of range");

    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(m));
    AlignedBuffer<weight_t> weights(static_cast<std::size_t>(m));
    read_raw(in, offsets.data(), offsets.size() * sizeof(edge_offset_t));
    read_raw(in, targets.data(), targets.size() * sizeof(vertex_t));
    read_raw(in, weights.data(), weights.size() * sizeof(weight_t));

    CsrGraph g(std::move(offsets), std::move(targets));
    if (!g.well_formed())
        throw std::runtime_error(
            "read_weighted_csr: file is not a well-formed CSR: " + path);
    return WeightedCsrGraph(std::move(g), std::move(weights));
}

EdgeList read_edge_list_text(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_edge_list_text: cannot open " + path);

    EdgeList edges;
    std::string line;
    vertex_t max_id = 0;
    bool any = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%') continue;
        unsigned long long src = 0;
        unsigned long long dst = 0;
        if (std::sscanf(line.c_str(), "%llu %llu", &src, &dst) != 2)
            throw std::runtime_error("read_edge_list_text: bad line: " + line);
        if (src >= kInvalidVertex || dst >= kInvalidVertex)
            throw std::runtime_error("read_edge_list_text: vertex id out of range");
        edges.add(static_cast<vertex_t>(src), static_cast<vertex_t>(dst));
        max_id = std::max({max_id, static_cast<vertex_t>(src),
                           static_cast<vertex_t>(dst)});
        any = true;
    }
    if (any) edges.set_num_vertices(max_id + 1);
    return edges;
}

void write_edge_list_text(const EdgeList& edges, const std::string& path) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_edge_list_text: cannot open " + path);
    out << "# sge edge list: " << edges.num_vertices() << " vertices, "
        << edges.num_edges() << " edges\n";
    for (const Edge& e : edges) out << e.src << ' ' << e.dst << '\n';
    if (!out) throw std::runtime_error("write_edge_list_text: short write");
}

}  // namespace sge
