#pragma once

// Word-at-a-time scans for frontier generation (docs/ALGORITHMS.md
// "Frontier generation"). The portable baseline tests one 64-bit word
// per step — a whole-word compare filters 32 vertices (VersionedBitmap)
// or one 64-lane mask (MS-BFS) with a single load — and iterates the
// survivors with ctz. The optional AVX2 path, selected once per process
// by runtime CPUID dispatch, vector-skips runs of four uninteresting
// words at a time; every *interesting* word is then re-examined by the
// same scalar code, so both paths report bit-identical (index, mask)
// sequences. SGE_SIMD=scalar (or 0) forces the portable path, which is
// how the equality tests compare both on one host.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "runtime/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SGE_SIMD_X86 1
#else
#define SGE_SIMD_X86 0
#endif

namespace sge::simd {

/// Instruction-set level a scan runs at. kScalar is always available;
/// kAvx2 only on x86 hosts whose CPUID reports AVX2.
enum class IsaLevel { kScalar, kAvx2 };

[[nodiscard]] inline const char* to_string(IsaLevel level) noexcept {
    return level == IsaLevel::kAvx2 ? "avx2" : "scalar";
}

/// True when this build + CPU can run the AVX2 kernels at all.
[[nodiscard]] inline bool avx2_supported() noexcept {
#if SGE_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/// The process-wide dispatch decision, made once: AVX2 when supported,
/// scalar otherwise or when SGE_SIMD=scalar|0 overrides (tests,
/// A/B measurements). Engines read this once per run, not per word.
[[nodiscard]] inline IsaLevel active_level() {
    static const IsaLevel level = [] {
        if (const auto v = env_string("SGE_SIMD"))
            if (*v == "scalar" || *v == "0") return IsaLevel::kScalar;
        return avx2_supported() ? IsaLevel::kAvx2 : IsaLevel::kScalar;
    }();
    return level;
}

/// Mask of *unvisited* slots in an epoch-versioned bitmap word
/// (`epoch (high 32) | payload (low 32)`): a stale stamp means the
/// whole word is logically clear, i.e. all 32 slots unvisited.
[[nodiscard]] constexpr std::uint32_t unvisited_mask(
    std::uint64_t word, std::uint32_t epoch) noexcept {
    return (word >> 32) == epoch ? ~static_cast<std::uint32_t>(word)
                                 : 0xFFFFFFFFu;
}

/// Mask of *set* slots: stale words contribute nothing.
[[nodiscard]] constexpr std::uint32_t set_mask(std::uint64_t word,
                                               std::uint32_t epoch) noexcept {
    return (word >> 32) == epoch ? static_cast<std::uint32_t>(word) : 0u;
}

/// Iterates the set bits of `mask`, lowest first: fn(bit_index).
template <typename Fn>
inline void for_each_bit(std::uint32_t mask, Fn&& fn) {
    while (mask != 0) {
        fn(static_cast<unsigned>(std::countr_zero(mask)));
        mask &= mask - 1;
    }
}

#if SGE_SIMD_X86
namespace detail {

/// Advances `i` past words equal to `skip` (4 at a time); returns the
/// first index in [i, hi) whose word differs, or >= hi - 3 when the
/// remaining tail is too short for a vector — the caller finishes it
/// scalar. The compare is exact, so the skip never drops a word the
/// scalar path would report.
__attribute__((target("avx2"))) inline std::size_t skip_equal_u64_avx2(
    const std::uint64_t* words, std::size_t i, std::size_t hi,
    std::uint64_t skip) noexcept {
    const __m256i pattern = _mm256_set1_epi64x(static_cast<long long>(skip));
    for (; i + 4 <= hi; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + i));
        if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(w, pattern)) != -1) break;
    }
    return i;
}

/// Advances `i` past all-zero words (4 at a time).
__attribute__((target("avx2"))) inline std::size_t skip_zero_u64_avx2(
    const std::uint64_t* words, std::size_t i, std::size_t hi) noexcept {
    for (; i + 4 <= hi; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + i));
        if (!_mm256_testz_si256(w, w)) break;
    }
    return i;
}

/// Advances `i` past words whose high 32 bits differ from `epoch`
/// (stale epoch-versioned words; 4 at a time).
__attribute__((target("avx2"))) inline std::size_t skip_stale_u64_avx2(
    const std::uint64_t* words, std::size_t i, std::size_t hi,
    std::uint32_t epoch) noexcept {
    const __m256i e = _mm256_set1_epi64x(
        static_cast<long long>(static_cast<std::uint64_t>(epoch)));
    for (; i + 4 <= hi; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + i));
        const __m256i fresh = _mm256_cmpeq_epi64(_mm256_srli_epi64(w, 32), e);
        if (!_mm256_testz_si256(fresh, fresh)) break;
    }
    return i;
}

}  // namespace detail
#endif  // SGE_SIMD_X86

/// Calls fn(word_index, unvisited_mask) for every word in [wlo, whi)
/// with at least one unvisited slot. `words_scanned` accrues whi - wlo
/// (vector-skipped words count — they were examined).
///
/// Safe under the bottom-up sweep's concurrency: the first and last
/// word of the range may straddle a neighbouring claim and are loaded
/// atomically; the interior is only ever written by the calling thread
/// within a level (a claim's interior words hold only that claim's
/// vertices), so the AVX2 path's plain vector loads race with nothing.
template <typename Fn>
inline void for_each_unvisited_word(const std::atomic<std::uint64_t>* words,
                                    std::size_t wlo, std::size_t whi,
                                    std::uint32_t epoch, IsaLevel level,
                                    std::uint64_t& words_scanned, Fn&& fn) {
    if (wlo >= whi) return;
    words_scanned += whi - wlo;
    const auto scalar_word = [&](std::size_t i) {
        const std::uint64_t w = words[i].load(std::memory_order_relaxed);
        const std::uint32_t m = unvisited_mask(w, epoch);
        if (m != 0) fn(i, m);
    };
#if SGE_SIMD_X86
    if (level == IsaLevel::kAvx2 && whi - wlo > 2) {
        const std::uint64_t full =
            (static_cast<std::uint64_t>(epoch) << 32) | 0xFFFFFFFFu;
        scalar_word(wlo);  // possibly shared with the previous claim
        const std::size_t last = whi - 1;
        const auto* raw = reinterpret_cast<const std::uint64_t*>(words);
        std::size_t i = wlo + 1;
        while (i < last) {
            i = detail::skip_equal_u64_avx2(raw, i, last, full);
            if (i >= last) break;
            scalar_word(i);
            ++i;
        }
        scalar_word(last);  // possibly shared with the next claim
        return;
    }
#endif
    (void)level;
    for (std::size_t i = wlo; i < whi; ++i) scalar_word(i);
}

/// Calls fn(word_index, set_mask) for every word in [wlo, whi) with at
/// least one set slot. Quiescent-only (no concurrent writers): the
/// bits->queue harvest and other post-barrier sweeps.
template <typename Fn>
inline void for_each_set_word(const std::atomic<std::uint64_t>* words,
                              std::size_t wlo, std::size_t whi,
                              std::uint32_t epoch, IsaLevel level,
                              std::uint64_t& words_scanned, Fn&& fn) {
    if (wlo >= whi) return;
    words_scanned += whi - wlo;
    const auto scalar_word = [&](std::size_t i) {
        const std::uint64_t w = words[i].load(std::memory_order_relaxed);
        const std::uint32_t m = set_mask(w, epoch);
        if (m != 0) fn(i, m);
    };
#if SGE_SIMD_X86
    if (level == IsaLevel::kAvx2) {
        const auto* raw = reinterpret_cast<const std::uint64_t*>(words);
        std::size_t i = wlo;
        while (i < whi) {
            i = detail::skip_stale_u64_avx2(raw, i, whi, epoch);
            if (i >= whi) break;
            scalar_word(i);
            ++i;
        }
        return;
    }
#endif
    (void)level;
    for (std::size_t i = wlo; i < whi; ++i) scalar_word(i);
}

/// Calls fn(index, value) for every nonzero word in [lo, hi) — the
/// MS-BFS lane-mask scan. Quiescent-only over the scanned array.
template <typename Fn>
inline void for_each_nonzero_u64(const std::uint64_t* words, std::size_t lo,
                                 std::size_t hi, IsaLevel level,
                                 std::uint64_t& words_scanned, Fn&& fn) {
    if (lo >= hi) return;
    words_scanned += hi - lo;
#if SGE_SIMD_X86
    if (level == IsaLevel::kAvx2) {
        std::size_t i = lo;
        while (i < hi) {
            i = detail::skip_zero_u64_avx2(words, i, hi);
            if (i >= hi) break;
            if (words[i] != 0) fn(i, words[i]);
            ++i;
        }
        return;
    }
#endif
    (void)level;
    for (std::size_t i = lo; i < hi; ++i)
        if (words[i] != 0) fn(i, words[i]);
}

}  // namespace sge::simd
