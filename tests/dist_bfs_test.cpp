#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "dist/dist_bfs.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

BfsResult serial_reference(const CsrGraph& g, vertex_t root) {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    return bfs(g, root, opts);
}

class DistBfsRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistBfsRanks, MatchesSerialOnUniform) {
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 6;
    params.seed = 9;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    DistBfsOptions opts;
    opts.ranks = GetParam();
    const BfsResult r = distributed_bfs(g, 17, opts);
    expect_equivalent(serial_reference(g, 17), r);
    EXPECT_TRUE(validate_bfs_tree(g, 17, r).ok);
}

TEST_P(DistBfsRanks, MatchesSerialOnRmat) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 12;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    DistBfsOptions opts;
    opts.ranks = GetParam();
    opts.channel_capacity = 32;  // exercise the spill path
    opts.batch_size = 8;
    const BfsResult r = distributed_bfs(g, 3, opts);
    expect_equivalent(serial_reference(g, 3), r);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistBfsRanks, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                             return "ranks_" + std::to_string(info.param);
                         });

TEST(DistBfs, RootOnLastRank) {
    const CsrGraph g = test::path_graph(100);
    DistBfsOptions opts;
    opts.ranks = 4;
    const BfsResult r = distributed_bfs(g, 99, opts);
    expect_equivalent(serial_reference(g, 99), r);
}

TEST(DistBfs, DisconnectedGraph) {
    const CsrGraph g = test::two_cliques(10);
    DistBfsOptions opts;
    opts.ranks = 3;
    const BfsResult r = distributed_bfs(g, 15, opts);
    EXPECT_EQ(r.vertices_visited, 10u);
    for (vertex_t v = 0; v < 10; ++v)
        EXPECT_EQ(r.parent[v], kInvalidVertex) << v;
}

TEST(DistBfs, MoreRanksThanVertices) {
    const CsrGraph g = test::cycle_graph(5);
    DistBfsOptions opts;
    opts.ranks = 8;
    const BfsResult r = distributed_bfs(g, 2, opts);
    expect_equivalent(serial_reference(g, 2), r);
}

TEST(DistBfs, CommunicationVolumeIsCounted) {
    // On a path split across 2 ranks, exactly the cut edge's discoveries
    // cross: parent of the boundary vertex travels once each way at most.
    const CsrGraph g = test::path_graph(100);
    DistBfsOptions opts;
    opts.ranks = 2;
    opts.collect_stats = true;
    const BfsResult r = distributed_bfs(g, 0, opts);
    std::uint64_t tuples = 0;
    for (const auto& s : r.level_stats) tuples += s.remote_tuples;
    // Path 0..99 split at 50: the only remote sends are across 49-50
    // (one per direction of the cut arcs actually scanned).
    EXPECT_GE(tuples, 1u);
    EXPECT_LE(tuples, 2u);
}

TEST(DistBfs, PerLevelStatsCoverTraversal) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    DistBfsOptions opts;
    opts.ranks = 4;
    opts.collect_stats = true;
    const BfsResult r = distributed_bfs(g, 0, opts);
    ASSERT_EQ(r.level_stats.size(), r.num_levels);
    std::uint64_t frontier_total = 0;
    std::uint64_t edges_total = 0;
    for (const auto& s : r.level_stats) {
        frontier_total += s.frontier_size;
        edges_total += s.edges_scanned;
    }
    EXPECT_EQ(frontier_total, r.vertices_visited);
    EXPECT_EQ(edges_total, r.edges_traversed);
}

TEST(DistBfs, InvalidArgumentsThrow) {
    const CsrGraph g = test::path_graph(4);
    DistBfsOptions opts;
    opts.ranks = 0;
    EXPECT_THROW(distributed_bfs(g, 0, opts), std::invalid_argument);
    EXPECT_THROW(distributed_bfs(g, 4, DistBfsOptions{}), std::out_of_range);
}

TEST(DistBfs, DeterministicAcrossRuns) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8000;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    DistBfsOptions opts;
    opts.ranks = 4;
    const BfsResult first = distributed_bfs(g, 1, opts);
    for (int i = 0; i < 3; ++i)
        expect_equivalent(first, distributed_bfs(g, 1, opts));
}

}  // namespace
}  // namespace sge
