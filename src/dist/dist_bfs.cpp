#include "dist/dist_bfs.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "graph/partition.hpp"
#include "runtime/timer.hpp"

namespace sge {

namespace {

/// A rank's private copy of its partition rows: local CSR with global
/// target ids. Built once per BFS (in a real distributed setting this
/// is the input each process reads; copying makes the no-shared-graph
/// property literal).
struct RankSlice {
    vertex_t first = 0;  // global id of local vertex 0
    std::vector<edge_offset_t> offsets;
    std::vector<vertex_t> targets;  // global ids

    [[nodiscard]] vertex_t size() const noexcept {
        return static_cast<vertex_t>(offsets.empty() ? 0 : offsets.size() - 1);
    }
};

RankSlice make_slice(const CsrGraph& g, vertex_t lo, vertex_t hi) {
    RankSlice slice;
    slice.first = lo;
    slice.offsets.reserve(hi - lo + 1);
    slice.offsets.push_back(0);
    for (vertex_t v = lo; v < hi; ++v) {
        const auto adj = g.neighbors(v);
        slice.targets.insert(slice.targets.end(), adj.begin(), adj.end());
        slice.offsets.push_back(slice.targets.size());
    }
    return slice;
}

}  // namespace

BfsResult distributed_bfs(const CsrGraph& g, vertex_t root,
                          const DistBfsOptions& options) {
    detail::check_root(g, root);
    if (options.ranks < 1)
        throw std::invalid_argument("distributed_bfs: ranks must be >= 1");
    const vertex_t n = g.num_vertices();
    const int ranks = options.ranks;
    const SocketPartition partition(n, ranks);

    // Per-rank private state, indexed by rank. The structs are only
    // ever touched by their owning rank thread (and by the final
    // gather, after join).
    struct RankState {
        RankSlice slice;
        std::vector<vertex_t> parent;   // local index -> global parent
        std::vector<level_t> level;     // local index
        std::vector<std::uint8_t> visited;
        std::vector<vertex_t> frontier;      // local ids
        std::vector<vertex_t> next_frontier; // local ids
        std::uint64_t visited_count = 0;
        std::uint64_t edges_scanned = 0;
    };
    std::vector<RankState> states(static_cast<std::size_t>(ranks));

    // Inter-rank fabric: one MPSC inbox per rank, carrying packed
    // (global child, global parent) tuples.
    std::vector<std::unique_ptr<Channel<std::uint64_t, kEmptyVisit>>> inbox;
    inbox.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r)
        inbox.push_back(std::make_unique<Channel<std::uint64_t, kEmptyVisit>>(
            options.channel_capacity));

    SpinBarrier barrier(ranks);

    // The allreduce stand-in: each superstep's global next-frontier
    // size, plus the per-level stats accumulator.
    struct Shared {
        std::atomic<std::uint64_t> frontier_total{0};
        bool done = false;
        std::uint32_t levels_run = 0;
    } shared;
    detail::LevelAccumLog stats;
    stats.emplace_back();
    stats[0].frontier_size = 1;
    const bool collect = options.collect_stats;
    detail::SpanRecorder spans(ranks, collect);

    WallTimer timer;
    ThreadTeam team(ranks, Topology::emulate(ranks, 1, 1));
    team.run([&](int rank) {
        RankState& me = states[static_cast<std::size_t>(rank)];
        const auto [lo, hi] = partition.range(rank);
        me.slice = make_slice(g, lo, hi);
        const vertex_t local_n = me.slice.size();
        me.parent.assign(local_n, kInvalidVertex);
        me.level.assign(local_n, kInvalidLevel);
        me.visited.assign(local_n, 0);

        // Private visit of a locally-owned global vertex. No atomics in
        // this engine: the already-visited hit counts as a "skip" and
        // the plain claim as a "win" so the cross-engine invariants
        // (sum of wins == n-1) still hold.
        const auto visit = [&](vertex_t global_child, vertex_t global_parent,
                               level_t at, detail::ThreadCounters& counters) {
            const vertex_t local = global_child - me.slice.first;
            if (me.visited[local]) {
                counters.count_skip();
                return;
            }
            counters.count_win();
            me.visited[local] = 1;
            me.parent[local] = global_parent;
            me.level[local] = at;
            me.next_frontier.push_back(local);
            ++me.visited_count;
        };

        if (partition.socket_of(root) == rank) {
            const vertex_t local_root = root - me.slice.first;
            me.visited[local_root] = 1;
            me.parent[local_root] = root;
            me.level[local_root] = 0;
            me.frontier.push_back(local_root);
            ++me.visited_count;
        }
        if (!barrier.arrive_and_wait()) return;

        std::vector<LocalBatch<std::uint64_t>> outgoing;
        outgoing.reserve(static_cast<std::size_t>(ranks));
        for (int r = 0; r < ranks; ++r) outgoing.emplace_back(options.batch_size);
        AlignedBuffer<std::uint64_t> drain(
            options.batch_size < 1 ? 1 : options.batch_size);

        level_t depth = 0;
        WallTimer level_timer;  // rank 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            detail::ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across rank 0's emplace_back between the barriers.
            detail::LevelAccum& slot = stats[depth];

            // ---- superstep phase 1: expand local frontier ----
            for (const vertex_t local_u : me.frontier) {
                const vertex_t global_u = me.slice.first + local_u;
                const auto begin = me.slice.offsets[local_u];
                const auto end = me.slice.offsets[local_u + 1];
                counters.edges_scanned += end - begin;
                for (edge_offset_t e = begin; e < end; ++e) {
                    const vertex_t w = me.slice.targets[e];
                    const int owner = partition.socket_of(w);
                    if (owner == rank) {
                        ++counters.bitmap_checks;
                        visit(w, global_u, depth + 1, counters);
                    } else {
                        ++counters.remote_tuples;
                        if (outgoing[owner].push(pack_visit(w, global_u))) {
                            counters.count_batch_push(
                                outgoing[owner].size(),
                                outgoing[owner].capacity());
                            inbox[owner]->push_batch(outgoing[owner].data(),
                                                     outgoing[owner].size());
                            outgoing[owner].clear();
                        }
                    }
                }
            }
            for (int r = 0; r < ranks; ++r) {
                if (!outgoing[r].empty()) {
                    counters.count_batch_push(outgoing[r].size(),
                                              outgoing[r].capacity());
                    inbox[r]->push_batch(outgoing[r].data(), outgoing[r].size());
                    outgoing[r].clear();
                }
            }
            me.edges_scanned += counters.edges_scanned;
            if (!detail::timed_wait(barrier, slot, collect)) return;

            // ---- superstep phase 2: drain my inbox ----
            Channel<std::uint64_t, kEmptyVisit>& mine = *inbox[rank];
            for (;;) {
                const std::size_t k = mine.pop_batch(drain.data(), drain.size());
                if (k == 0) break;
                counters.count_batch_pop(k);
                counters.bitmap_checks += k;
                for (std::size_t j = 0; j < k; ++j)
                    visit(visit_child(drain[j]), visit_parent(drain[j]),
                          depth + 1, counters);
            }

            // ---- allreduce(next frontier size) ----
            shared.frontier_total.fetch_add(me.next_frontier.size(),
                                            std::memory_order_relaxed);
            counters.flush_into(slot);
            if (!detail::timed_wait(barrier, slot, collect)) return;

            if (rank == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                const std::uint64_t total =
                    shared.frontier_total.load(std::memory_order_relaxed);
                shared.frontier_total.store(0, std::memory_order_relaxed);
                shared.done = total == 0;
                ++shared.levels_run;
                if (!shared.done) {
                    stats.emplace_back();
                    stats[depth + 1].frontier_size = total;
                }
            }
            if (!detail::timed_wait(barrier, slot, collect)) return;
            spans.record(rank, depth, span_start, spans.now(timer));
            if (shared.done) break;

            me.frontier.swap(me.next_frontier);
            me.next_frontier.clear();
            ++depth;
        }
    }, &barrier);

    // ---- gather: assemble the global result from the rank slices ----
    BfsResult result;
    result.parent.assign(n, kInvalidVertex);
    if (options.compute_levels) result.level.assign(n, kInvalidLevel);
    for (int r = 0; r < ranks; ++r) {
        const RankState& me = states[static_cast<std::size_t>(r)];
        const auto [lo, hi] = partition.range(r);
        for (vertex_t v = lo; v < hi; ++v) {
            result.parent[v] = me.parent[v - lo];
            if (options.compute_levels) result.level[v] = me.level[v - lo];
        }
        result.vertices_visited += me.visited_count;
        result.edges_traversed += me.edges_scanned;
    }
    result.num_levels = shared.levels_run;
    result.seconds = timer.seconds();
    spans.collect_into(result);
    if (options.collect_stats)
        detail::copy_level_stats(result, stats, shared.levels_run);
    return result;
}

}  // namespace sge
