#include "graph/csr_compressed.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sge {

namespace {

/// Bounds-checked decode for untrusted blobs: refuses to read past
/// `end`, refuses values wider than the 64-bit accumulator. Returns
/// nullptr on malformed input. The hot path uses the unchecked
/// varint::decode_u64 instead — this runs once, in well_formed().
const std::uint8_t* checked_decode_u64(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       std::uint64_t& value) noexcept {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p != end) {
        const std::uint8_t byte = *p++;
        if (shift >= 64 || (shift == 63 && (byte & 0x7eu) != 0)) {
            return nullptr;  // overflows 64 bits
        }
        v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        if ((byte & 0x80u) == 0) {
            value = v;
            return p;
        }
        shift += 7;
    }
    return nullptr;  // ran off the row without a terminating byte
}

}  // namespace

CompressedCsrGraph::CompressedCsrGraph(AlignedBuffer<edge_offset_t> byte_offsets,
                                       AlignedBuffer<vertex_t> degrees,
                                       AlignedBuffer<std::uint8_t> blob)
    : byte_offsets_(std::move(byte_offsets)),
      degrees_(std::move(degrees)),
      blob_(std::move(blob)) {
    for (const vertex_t d : degrees_) num_edges_ += d;
}

bool CompressedCsrGraph::well_formed() const noexcept {
    const vertex_t n = num_vertices();
    if (n == 0) {
        return byte_offsets_.size() <= 1 && blob_.empty() && num_edges_ == 0;
    }
    if (byte_offsets_.size() != static_cast<std::size_t>(n) + 1) return false;
    if (byte_offsets_[0] != 0) return false;
    if (byte_offsets_[n] != blob_.size()) return false;
    edge_offset_t degree_sum = 0;
    for (vertex_t v = 0; v < n; ++v) {
        if (byte_offsets_[v] > byte_offsets_[v + 1]) return false;
        degree_sum += degrees_[v];
    }
    if (degree_sum != num_edges_) return false;
    for (vertex_t v = 0; v < n; ++v) {
        const std::uint8_t* p = blob_.data() + byte_offsets_[v];
        const std::uint8_t* const end = blob_.data() + byte_offsets_[v + 1];
        const vertex_t deg = degrees_[v];
        if (deg == 0) {
            if (p != end) return false;
            continue;
        }
        std::uint64_t u = 0;
        p = checked_decode_u64(p, end, u);
        if (p == nullptr) return false;
        const std::int64_t first =
            static_cast<std::int64_t>(v) + varint::zigzag_decode(u);
        if (first < 0 || first >= static_cast<std::int64_t>(n)) return false;
        std::uint64_t prev = static_cast<std::uint64_t>(first);
        for (vertex_t i = 1; i < deg; ++i) {
            p = checked_decode_u64(p, end, u);
            if (p == nullptr) return false;
            prev += u;  // gaps are non-negative, so sortedness is implicit
            if (prev >= n) return false;
        }
        if (p != end) return false;  // row must consume exactly its bytes
    }
    return true;
}

bool operator==(const CompressedCsrGraph& a,
                const CompressedCsrGraph& b) noexcept {
    if (a.num_vertices() != b.num_vertices() ||
        a.num_edges_ != b.num_edges_ || a.blob_.size() != b.blob_.size()) {
        return false;
    }
    const vertex_t n = a.num_vertices();
    for (vertex_t v = 0; v < n; ++v) {
        if (a.degrees_[v] != b.degrees_[v]) return false;
        if (a.byte_offsets_[v] != b.byte_offsets_[v]) return false;
    }
    if (n != 0 && a.byte_offsets_[n] != b.byte_offsets_[n]) return false;
    for (std::size_t i = 0; i < a.blob_.size(); ++i) {
        if (a.blob_[i] != b.blob_[i]) return false;
    }
    return true;
}

CompressedCsrGraph csr_compress(const CsrGraph& g) {
    const vertex_t n = g.num_vertices();
    AlignedBuffer<edge_offset_t> byte_offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> degrees(n);

    // Pass 1: validate sortedness and measure each row's encoded size.
    byte_offsets[0] = 0;
    for (vertex_t v = 0; v < n; ++v) {
        const auto adj = g.neighbors(v);
        degrees[v] = static_cast<vertex_t>(adj.size());
        std::size_t bytes = 0;
        for (std::size_t i = 0; i < adj.size(); ++i) {
            if (i == 0) {
                bytes += varint::encoded_size_u64(varint::zigzag_encode(
                    static_cast<std::int64_t>(adj[0]) -
                    static_cast<std::int64_t>(v)));
            } else if (adj[i] < adj[i - 1]) {
                throw std::invalid_argument(
                    "csr_compress: adjacency of vertex " + std::to_string(v) +
                    " is not sorted at position " + std::to_string(i) +
                    " (neighbor " + std::to_string(adj[i]) +
                    " after " + std::to_string(adj[i - 1]) +
                    "); build the CSR with BuildOptions::sort_neighbors");
            } else {
                bytes += varint::encoded_size_u64(adj[i] - adj[i - 1]);
            }
        }
        byte_offsets[v + 1] = byte_offsets[v] + bytes;
    }

    // Pass 2: encode into the exactly-sized blob.
    AlignedBuffer<std::uint8_t> blob(
        static_cast<std::size_t>(n == 0 ? 0 : byte_offsets[n]));
    for (vertex_t v = 0; v < n; ++v) {
        const auto adj = g.neighbors(v);
        std::uint8_t* out = blob.data() + byte_offsets[v];
        for (std::size_t i = 0; i < adj.size(); ++i) {
            const std::uint64_t u =
                i == 0 ? varint::zigzag_encode(
                             static_cast<std::int64_t>(adj[0]) -
                             static_cast<std::int64_t>(v))
                       : adj[i] - adj[i - 1];
            out += varint::encode_u64(u, out);
        }
    }
    return CompressedCsrGraph(std::move(byte_offsets), std::move(degrees),
                              std::move(blob));
}

CsrGraph csr_decompress(const CompressedCsrGraph& g) {
    const vertex_t n = g.num_vertices();
    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(g.num_edges()));
    offsets[0] = 0;
    for (vertex_t v = 0; v < n; ++v) {
        offsets[v + 1] = offsets[v] + g.degree(v);
        vertex_t* out = targets.data() + offsets[v];
        g.neighbors_for_each(v, [&](vertex_t w) { *out++ = w; });
    }
    return CsrGraph(std::move(offsets), std::move(targets));
}

}  // namespace sge
