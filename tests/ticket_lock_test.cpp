#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/ticket_lock.hpp"

namespace sge {
namespace {

TEST(TicketLock, BasicLockUnlock) {
    TicketLock lock;
    lock.lock();
    lock.unlock();
    lock.lock();
    lock.unlock();
}

TEST(TicketLock, TryLockOnFreeLockSucceeds) {
    TicketLock lock;
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(TicketLock, TryLockOnHeldLockFails) {
    TicketLock lock;
    lock.lock();
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(TicketLock, WorksWithLockGuard) {
    TicketLock lock;
    {
        std::lock_guard guard(lock);
    }
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(TicketLock, MutualExclusionStress) {
    TicketLock lock;
    // Deliberately non-atomic counter: without mutual exclusion the
    // increments race and the final total comes up short.
    std::uint64_t counter = 0;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                std::lock_guard guard(lock);
                ++counter;
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(TicketLock, CriticalSectionsDoNotInterleave) {
    TicketLock lock;
    int inside = 0;        // non-atomic on purpose: protected by the lock
    bool violated = false;
    constexpr int kThreads = 6;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 5000; ++i) {
                std::lock_guard guard(lock);
                if (++inside != 1) violated = true;
                --inside;
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(violated);
}

}  // namespace
}  // namespace sge
