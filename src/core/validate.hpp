#pragma once

#include <string>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"

namespace sge {

/// Outcome of validate_bfs_tree: `ok` plus a human-readable reason for
/// the first violation found.
struct ValidationReport {
    bool ok = true;
    std::string error;

    static ValidationReport failure(std::string why) {
        return {false, std::move(why)};
    }
};

/// Graph500-style correctness audit of a BFS result against the graph:
///
///   1. the root is its own parent at level 0;
///   2. every reached vertex's parent is reached, and the tree edge
///      (parent[v], v) exists in the graph;
///   3. levels are consistent: level[v] == level[parent[v]] + 1;
///   4. no graph edge connects vertices more than one level apart, and
///      no edge connects a reached vertex to an unreached one (so the
///      reached set is exactly the root's connected component under
///      symmetric graphs);
///   5. the reached count matches BfsResult::vertices_visited.
///
/// `check_edge_levels` (rule 4) costs a full O(n + m) sweep; disable it
/// for very large instances. Rule 4's reachability half assumes the
/// graph is symmetric (the library's builder default); pass
/// `symmetric=false` to skip just that half for directed graphs.
ValidationReport validate_bfs_tree(const CsrGraph& g, vertex_t root,
                                   const BfsResult& result,
                                   bool check_edge_levels = true,
                                   bool symmetric = true);

}  // namespace sge
