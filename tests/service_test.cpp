#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "concurrency/cancel_token.hpp"
#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "runtime/fault.hpp"
#include "runtime/prng.hpp"
#include "service/admission.hpp"
#include "service/graph_service.hpp"
#include "stream/versioned_store.hpp"
#include "test_util.hpp"

#include <map>

namespace sge {
namespace {

using fault::Site;
using fault::Trigger;
using service::AdmissionQueue;
using service::GraphService;
using service::Outcome;
using service::PendingQuery;
using service::QueryResult;
using service::ServiceOptions;
using service::SubmitResult;
using test::path_graph;

CsrGraph rmat_test_graph(std::uint32_t scale, std::uint64_t edges,
                         std::uint64_t seed) {
    RmatParams params;
    params.scale = scale;
    params.num_edges = edges;
    params.seed = seed;
    return csr_from_edges(generate_rmat(params));
}

std::vector<level_t> serial_levels(const CsrGraph& g, vertex_t root) {
    BfsOptions options;
    options.engine = BfsEngine::kSerial;
    options.threads = 1;
    options.compute_levels = true;
    return bfs(g, root, options).level;
}

BfsOptions parallel_options(BfsEngine engine) {
    BfsOptions options;
    options.engine = engine;
    options.threads = 4;
    options.topology = Topology::emulate(2, 2, 1);
    options.compute_levels = true;
    return options;
}

// ---------------------------------------------------------------------
// CancelToken primitive.
// ---------------------------------------------------------------------

TEST(CancelTokenTest, ManualCancelIsStickyAndResettable) {
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.poll());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.poll());
    EXPECT_TRUE(token.poll());  // sticky
    token.reset();
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.poll());
}

TEST(CancelTokenTest, FiresOnNthPoll) {
    CancelToken token;
    token.fire_after_polls(3);
    EXPECT_FALSE(token.poll());
    EXPECT_FALSE(token.poll());
    EXPECT_TRUE(token.poll());  // third poll fires
    EXPECT_TRUE(token.cancelled());
    token.reset();
    token.fire_after_polls(0);  // disarmed
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(token.poll());
}

TEST(CancelTokenTest, DeadlineFiresOnPoll) {
    CancelToken token;
    token.set_deadline_after(-1.0);  // already-spent budget
    EXPECT_TRUE(token.cancelled());

    token.reset();
    token.set_deadline_after(0.005);
    EXPECT_FALSE(token.poll());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(token.deadline_passed());
    EXPECT_TRUE(token.poll());
}

// ---------------------------------------------------------------------
// Engine-level cancellation: a fired token stops every engine at the
// next level barrier with the partial progress reported, and the
// runner (team + workspace) answers the next query correctly.
// ---------------------------------------------------------------------

class EngineCancelTest : public ::testing::Test {
  protected:
    void SetUp() override { fault::disarm_all(); }
    void TearDown() override { fault::disarm_all(); }
};

TEST_F(EngineCancelTest, SerialStopsAtRequestedLevel) {
    const CsrGraph g = path_graph(512);
    CancelToken token;
    token.fire_after_polls(5);  // engines poll once per level

    BfsOptions options;
    options.engine = BfsEngine::kSerial;
    options.threads = 1;
    options.cancel = &token;
    try {
        bfs(g, 0, options);
        FAIL() << "expected BfsDeadlineError";
    } catch (const BfsDeadlineError& e) {
        EXPECT_TRUE(e.cancelled());
        EXPECT_EQ(e.level_reached(), 5u);
        EXPECT_GT(e.vertices_settled(), 0u);
        EXPECT_LT(e.vertices_settled(), 512u);
    }

    token.reset();  // same token, next run completes
    const BfsResult full = bfs(g, 0, options);
    EXPECT_EQ(full.vertices_visited, 512u);
}

TEST_F(EngineCancelTest, ParallelEnginesStopMidTraversalAndRunnerIsReusable) {
    const CsrGraph g = path_graph(512);  // 512 levels: plenty to cancel in
    const std::vector<level_t> expected = serial_levels(g, 0);

    for (const BfsEngine engine :
         {BfsEngine::kNaive, BfsEngine::kBitmap, BfsEngine::kMultiSocket,
          BfsEngine::kHybrid}) {
        CancelToken token;
        BfsOptions options = parallel_options(engine);
        options.cancel = &token;
        BfsRunner runner(options);

        token.fire_after_polls(7);
        try {
            runner.run(g, 0);
            FAIL() << "expected BfsDeadlineError for " << to_string(engine);
        } catch (const BfsDeadlineError& e) {
            EXPECT_TRUE(e.cancelled()) << to_string(engine);
            EXPECT_EQ(e.level_reached(), 7u) << to_string(engine);
            EXPECT_GT(e.vertices_settled(), 0u) << to_string(engine);
            EXPECT_LT(e.vertices_settled(), 512u) << to_string(engine);
        }

        // Cancellation never poisons the barrier or the arena: the SAME
        // runner (team + workspace) must answer the next query exactly.
        token.reset();
        const BfsResult again = runner.run(g, 0);
        EXPECT_EQ(again.vertices_visited, 512u) << to_string(engine);
        ASSERT_EQ(again.level.size(), expected.size()) << to_string(engine);
        EXPECT_EQ(again.level, expected) << to_string(engine);
    }
}

TEST_F(EngineCancelTest, MsBfsWaveStopsAllLanesTogether) {
    const CsrGraph g = path_graph(512);
    const std::vector<vertex_t> sources = {0, 100, 200};

    CancelToken token;
    token.fire_after_polls(4);
    MsBfsOptions options;
    options.threads = 2;
    options.cancel = &token;

    std::atomic<std::uint64_t> discoveries{0};
    const auto count = [&discoveries](int, level_t, vertex_t, std::uint64_t) {
        discoveries.fetch_add(1, std::memory_order_relaxed);
    };

    try {
        multi_source_bfs(g, sources, count, options);
        FAIL() << "expected BfsDeadlineError";
    } catch (const BfsDeadlineError& e) {
        EXPECT_TRUE(e.cancelled());
        EXPECT_EQ(e.level_reached(), 4u);
    }
    const std::uint64_t partial = discoveries.load();
    EXPECT_GT(partial, 0u);

    token.reset();  // the wave machinery is reusable after cancellation
    const std::uint32_t levels = multi_source_bfs(g, sources, count, options);
    EXPECT_GT(levels, 0u);
    EXPECT_GT(discoveries.load(), partial);
}

// ---------------------------------------------------------------------
// AdmissionQueue: bounded, non-blocking push, batch pop, clean close.
// ---------------------------------------------------------------------

TEST(AdmissionQueueTest, ShedsAtCapacityAndAfterClose) {
    AdmissionQueue queue(2);
    EXPECT_EQ(queue.capacity(), 2u);
    EXPECT_TRUE(queue.try_push(std::make_shared<PendingQuery>()));
    EXPECT_TRUE(queue.try_push(std::make_shared<PendingQuery>()));
    EXPECT_FALSE(queue.try_push(std::make_shared<PendingQuery>()));  // full
    EXPECT_EQ(queue.size(), 2u);

    std::vector<AdmissionQueue::Item> batch;
    EXPECT_EQ(queue.pop_batch(batch, 64, std::chrono::nanoseconds{0}), 2u);
    EXPECT_TRUE(queue.try_push(std::make_shared<PendingQuery>()));  // room again

    queue.close();
    EXPECT_FALSE(queue.try_push(std::make_shared<PendingQuery>()));  // closed
    batch.clear();
    EXPECT_EQ(queue.pop_batch(batch, 64, std::chrono::seconds{1}), 1u);
    EXPECT_EQ(queue.pop_batch(batch, 64, std::chrono::seconds{1}), 0u);  // drained
}

TEST(AdmissionQueueTest, PopBatchFlagsInFlightUnderTheLock) {
    AdmissionQueue queue(8);
    std::atomic<int> in_flight{0};
    EXPECT_TRUE(queue.try_push(std::make_shared<PendingQuery>()));
    std::vector<AdmissionQueue::Item> batch;
    EXPECT_EQ(queue.pop_batch(batch, 64, std::chrono::nanoseconds{0}, &in_flight),
              1u);
    EXPECT_EQ(in_flight.load(), 1);  // caller decrements after resolving
}

// ---------------------------------------------------------------------
// GraphService end to end.
// ---------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
  protected:
    void SetUp() override {
        fault::disarm_all();
        graph_ = rmat_test_graph(11, 8192, 5);
    }
    void TearDown() override { fault::disarm_all(); }

    ServiceOptions base_options() const {
        ServiceOptions options;
        options.bfs = parallel_options(BfsEngine::kBitmap);
        options.workers = 1;
        options.queue_capacity = 256;
        return options;
    }

    CsrGraph graph_;
};

TEST_F(ServiceTest, AnswersMatchTheSerialReference) {
    ServiceOptions options = base_options();
    options.batching = false;
    GraphService svc(graph_, options);

    for (const vertex_t root : {vertex_t{0}, vertex_t{7}, vertex_t{100}}) {
        SubmitResult s = svc.submit(root);
        ASSERT_TRUE(s.admitted);
        const QueryResult r = s.result.get();
        EXPECT_EQ(r.outcome, Outcome::kCompleted);
        EXPECT_FALSE(r.batched);
        EXPECT_EQ(r.root, root);
        EXPECT_EQ(r.level, serial_levels(graph_, root));
    }
    svc.stop();
    EXPECT_EQ(svc.counters().resolved(), svc.counters().submitted.load());
}

TEST_F(ServiceTest, ConcurrentRequestsCoalesceIntoOneWaveBitIdentically) {
    constexpr int kRequests = 40;
    ServiceOptions options = base_options();
    options.batching = true;
    options.batch_max_roots = 64;
    options.batch_window_seconds = 0.5;  // generous: one wave catches all
    GraphService svc(graph_, options);

    std::vector<std::future<QueryResult>> futures;
    std::vector<vertex_t> roots;
    for (int i = 0; i < kRequests; ++i) {
        const auto root = static_cast<vertex_t>(i * 97 % graph_.num_vertices());
        roots.push_back(root);
        SubmitResult s = svc.submit(root);
        ASSERT_TRUE(s.admitted);
        futures.push_back(std::move(s.result));
    }

    for (int i = 0; i < kRequests; ++i) {
        const QueryResult r = futures[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(r.outcome, Outcome::kCompleted) << "request " << i;
        EXPECT_TRUE(r.batched) << "request " << i;
        // Bit-identical to a per-request run: BFS hop distances are
        // unique for (graph, root), so the wave answer must equal the
        // serial answer exactly.
        EXPECT_EQ(r.level, serial_levels(graph_, roots[static_cast<std::size_t>(i)]))
            << "request " << i;
    }
    svc.stop();

    const auto& c = svc.counters();
    EXPECT_GE(c.waves.load(), 1u);
    EXPECT_GE(c.batched.load(), static_cast<std::uint64_t>(kRequests));
    EXPECT_GE(c.wave_roots.load(), 32u);  // distinct roots ridden in waves
    EXPECT_EQ(c.resolved(), c.submitted.load());
}

TEST_F(ServiceTest, DuplicateRootsShareOneLane) {
    ServiceOptions options = base_options();
    options.batch_window_seconds = 0.5;
    GraphService svc(graph_, options);

    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 8; ++i) futures.push_back(svc.submit(3).result);
    futures.push_back(svc.submit(9).result);

    const std::vector<level_t> expected = serial_levels(graph_, 3);
    for (std::size_t i = 0; i < 8; ++i) {
        const QueryResult r = futures[i].get();
        EXPECT_EQ(r.outcome, Outcome::kCompleted);
        EXPECT_EQ(r.level, expected);
    }
    EXPECT_EQ(futures[8].get().level, serial_levels(graph_, 9));
    svc.stop();
    // 9 requests, but at most 2 distinct roots ever entered a wave.
    EXPECT_LE(svc.counters().wave_roots.load(), 2u);
}

TEST_F(ServiceTest, ExpiredDeadlineResolvesCancelled) {
    GraphService svc(graph_, base_options());
    // A microsecond budget is spent before any worker can dispatch: the
    // request must resolve kCancelled — never hang, never burn a run.
    SubmitResult s = svc.submit(0, /*deadline_seconds=*/1e-6);
    ASSERT_TRUE(s.admitted);
    const QueryResult r = s.result.get();
    EXPECT_EQ(r.outcome, Outcome::kCancelled);
    EXPECT_FALSE(r.answered());
    EXPECT_TRUE(r.level.empty());
    svc.stop();
    EXPECT_EQ(svc.counters().cancelled.load(), 1u);
}

TEST_F(ServiceTest, StopDrainsAndSubmitAfterStopSheds) {
    ServiceOptions options = base_options();
    options.batch_window_seconds = 0.0;
    GraphService svc(graph_, options);

    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(
            svc.submit(static_cast<vertex_t>(i % graph_.num_vertices())).result);
    svc.stop();  // drain: every already-submitted future must resolve

    for (auto& f : futures) {
        const QueryResult r = f.get();
        EXPECT_TRUE(r.outcome == Outcome::kCompleted ||
                    r.outcome == Outcome::kDegraded ||
                    r.outcome == Outcome::kCancelled ||
                    r.outcome == Outcome::kShed)
            << to_string(r.outcome);
    }

    SubmitResult late = svc.submit(0);
    EXPECT_FALSE(late.admitted);
    EXPECT_EQ(late.result.get().outcome, Outcome::kShed);

    const auto& c = svc.counters();
    EXPECT_EQ(c.submitted.load(), 101u);
    EXPECT_EQ(c.resolved(), 101u);  // zero lost requests
}

TEST_F(ServiceTest, SubmitRejectsOutOfRangeRoot) {
    GraphService svc(graph_, base_options());
    EXPECT_THROW(svc.submit(graph_.num_vertices()), std::out_of_range);
    svc.stop();
}

// ---------------------------------------------------------------------
// Fault sites: injected failures degrade, never lose requests.
// ---------------------------------------------------------------------

class ServiceFaultTest : public ServiceTest {
  protected:
    void SetUp() override {
        ServiceTest::SetUp();
        if (!fault::compiled_in())
            GTEST_SKIP() << "built with SGE_FAULT_INJECTION=OFF";
    }
};

TEST_F(ServiceFaultTest, SubmitFaultShedsInsteadOfThrowing) {
    GraphService svc(graph_, base_options());
    fault::arm(Site::kServiceSubmit, Trigger{.probability = 0.0, .nth = 1});

    SubmitResult s = svc.submit(0);
    EXPECT_FALSE(s.admitted);
    EXPECT_EQ(s.result.get().outcome, Outcome::kShed);
    fault::disarm_all();

    SubmitResult ok = svc.submit(0);  // site disarmed: service is fine
    ASSERT_TRUE(ok.admitted);
    EXPECT_EQ(ok.result.get().outcome, Outcome::kCompleted);
    svc.stop();
    EXPECT_EQ(svc.counters().shed.load(), 1u);
}

TEST_F(ServiceFaultTest, WorkerFaultDegradesBatchThenRecovers) {
    ServiceOptions options = base_options();
    options.batch_window_seconds = 0.0;
    GraphService svc(graph_, options);

    // First dispatched batch faults: its requests must still be
    // answered (serial retry => kDegraded, correct BFS), the worker
    // rebuilds its runner, and the next request completes normally.
    fault::arm(Site::kServiceWorker, Trigger{.probability = 0.0, .nth = 1});
    SubmitResult s = svc.submit(11);
    ASSERT_TRUE(s.admitted);
    const QueryResult r = s.result.get();
    EXPECT_EQ(r.outcome, Outcome::kDegraded);
    EXPECT_EQ(r.level, serial_levels(graph_, 11));
    fault::disarm_all();

    const QueryResult after = svc.submit(11).result.get();
    EXPECT_EQ(after.outcome, Outcome::kCompleted);
    EXPECT_EQ(after.level, serial_levels(graph_, 11));
    svc.stop();

    const auto& c = svc.counters();
    EXPECT_EQ(c.degraded.load(), 1u);
    EXPECT_GE(c.worker_restarts.load(), 1u);
    EXPECT_EQ(svc.healthy_workers(), 1);
}

TEST_F(ServiceFaultTest, FlushFaultFallsBackToPerRequestDispatch) {
    ServiceOptions options = base_options();
    options.batch_window_seconds = 0.5;
    GraphService svc(graph_, options);
    fault::arm(Site::kServiceFlush, Trigger{.probability = 1.0, .nth = 0});

    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(svc.submit(static_cast<vertex_t>(i)).result);
    for (int i = 0; i < 8; ++i) {
        const QueryResult r = futures[static_cast<std::size_t>(i)].get();
        EXPECT_TRUE(r.answered()) << "request " << i;
        EXPECT_EQ(r.level, serial_levels(graph_, static_cast<vertex_t>(i)));
    }
    fault::disarm_all();
    svc.stop();
    EXPECT_EQ(svc.counters().waves.load(), 0u);  // every wave assembly failed
}

// ---------------------------------------------------------------------
// Chaos soak: a 1k-request stream under probabilistic faults at every
// service site. The invariants: no hang (every future resolves), no
// lost request (resolved == submitted), and every answered result is a
// correct BFS.
// ---------------------------------------------------------------------

TEST_F(ServiceFaultTest, ChaosSoakLosesNothingAndAnswersCorrectly) {
    constexpr int kRequests = 1000;

    // Honour CI-provided SGE_FAULT_* arming; fill in defaults for any
    // service site left unarmed so the soak always has chaos to survive.
    fault::load_from_env();
    for (const Site site :
         {Site::kServiceSubmit, Site::kServiceFlush, Site::kServiceWorker}) {
        if (!fault::armed_trigger(site))
            fault::arm(site, Trigger{.probability = 1e-3, .nth = 0});
    }

    ServiceOptions options = base_options();
    options.workers = 2;
    options.queue_capacity = 512;
    options.batch_window_seconds = 0.001;
    GraphService svc(graph_, options);

    // Eight fixed roots with precomputed reference answers: every
    // answered result is checked for exact correctness.
    std::vector<vertex_t> roots;
    std::vector<std::vector<level_t>> expected;
    for (vertex_t r = 0; r < 8; ++r) {
        roots.push_back(r * 31 % graph_.num_vertices());
        expected.push_back(serial_levels(graph_, roots.back()));
    }

    SplitMix64 rng(2026);
    std::vector<std::pair<std::size_t, std::future<QueryResult>>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        const std::size_t which = rng.next() % roots.size();
        // A sprinkle of hopeless deadlines exercises the cancellation
        // path; the rest are unbounded.
        const double deadline = (rng.next() % 100 == 0) ? 1e-7 : 0.0;
        futures.emplace_back(which,
                             svc.submit(roots[which], deadline).result);
    }

    std::uint64_t answered = 0;
    for (auto& [which, future] : futures) {
        const QueryResult r = future.get();  // must resolve: no hangs
        if (r.answered()) {
            ++answered;
            EXPECT_EQ(r.level, expected[which]);
        }
    }
    svc.stop();
    fault::disarm_all();

    const auto& c = svc.counters();
    EXPECT_EQ(c.submitted.load(), static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(c.resolved(), static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(c.failed.load(), 0u);  // the serial ladder rung never breaks
    EXPECT_GT(answered, 0u);
}

// ---------------------------------------------------------------------
// Live graphs: store-backed service. Mutations and queries share the
// admission queue; every answered query is exact on the published
// snapshot version it reports.
// ---------------------------------------------------------------------

ServiceOptions live_options(int workers = 1) {
    ServiceOptions options;
    options.bfs = parallel_options(BfsEngine::kBitmap);
    options.workers = workers;
    options.queue_capacity = 512;
    return options;
}

TEST(LiveServiceTest, MutationPublishesAndLaterQueriesObserveIt) {
    VersionedGraphStore store(64);
    GraphService svc(store, live_options());
    EXPECT_TRUE(svc.live());

    MutationBatch path;
    for (vertex_t v = 0; v + 1 < 8; ++v) path.insert(v, v + 1);
    const QueryResult m = svc.submit_mutation(std::move(path)).result.get();
    ASSERT_EQ(m.outcome, Outcome::kCompleted);
    EXPECT_EQ(m.snapshot_version, 2u);  // v1 was the empty seed
    EXPECT_EQ(store.version(), 2u);

    // Submitted after the mutation resolved, so it must pin v2 (the
    // only writer is this test).
    const QueryResult q = svc.submit(0).result.get();
    ASSERT_TRUE(q.answered());
    EXPECT_EQ(q.snapshot_version, 2u);
    EXPECT_EQ(q.level[7], 7u);
    EXPECT_EQ(q.level, serial_levels(store.acquire().graph(), 0));

    svc.stop();
    EXPECT_EQ(svc.counters().mutations.load(), 1u);
    EXPECT_EQ(store.counters().batches_applied.load(), 1u);
}

TEST(LiveServiceTest, AnswersAreExactOnTheirReportedVersion) {
    constexpr vertex_t kN = 128;
    VersionedGraphStore store(kN);
    GraphService svc(store, live_options(2));

    // Reference levels per published version, recorded as each
    // mutation resolves (this thread is the only mutation source, so
    // the store sits at exactly that version right after).
    std::map<std::uint64_t, std::vector<level_t>> reference;
    reference[1] = serial_levels(store.acquire().graph(), 0);

    SplitMix64 rng(7);
    std::vector<std::future<QueryResult>> queries;
    for (int round = 0; round < 40; ++round) {
        MutationBatch b;
        for (int i = 0; i < 10; ++i) {
            const auto u = static_cast<vertex_t>(rng.next() % kN);
            const auto v = static_cast<vertex_t>(rng.next() % kN);
            if (rng.next() % 6 == 0)
                b.remove(u, v);
            else
                b.insert(u, v);
        }
        SubmitResult mf = svc.submit_mutation(std::move(b));
        ASSERT_TRUE(mf.admitted);
        // These race the mutation through the queue: each may answer
        // against the version before or after it — both are published
        // states, and snapshot_version says which.
        for (int q = 0; q < 4; ++q) queries.push_back(svc.submit(0).result);

        const QueryResult m = mf.result.get();
        ASSERT_EQ(m.outcome, Outcome::kCompleted);
        const SnapshotRef ref = store.acquire();
        ASSERT_EQ(ref.version(), m.snapshot_version);
        reference.emplace(m.snapshot_version,
                          serial_levels(ref.graph(), 0));
    }

    std::uint64_t answered = 0;
    for (auto& f : queries) {
        const QueryResult r = f.get();
        if (!r.answered()) continue;
        ++answered;
        const auto it = reference.find(r.snapshot_version);
        ASSERT_NE(it, reference.end())
            << "unknown snapshot version " << r.snapshot_version;
        EXPECT_EQ(r.level, it->second)
            << "answer not exact on version " << r.snapshot_version;
    }
    svc.stop();
    EXPECT_GT(answered, 0u);
    EXPECT_EQ(svc.counters().mutations.load(), 40u);
}

TEST(LiveServiceTest, MutationOnStaticServiceThrows) {
    const CsrGraph g = path_graph(8);
    GraphService svc(g, live_options());
    EXPECT_FALSE(svc.live());
    MutationBatch b;
    b.insert(0, 1);
    EXPECT_THROW(svc.submit_mutation(std::move(b)), std::logic_error);
    svc.stop();
}

TEST(LiveServiceTest, MutationRejectsOutOfRangeVertex) {
    VersionedGraphStore store(8);
    GraphService svc(store, live_options());
    MutationBatch b;
    b.insert(0, 8);
    EXPECT_THROW(svc.submit_mutation(std::move(b)), std::out_of_range);
    svc.stop();
    EXPECT_EQ(store.version(), 1u) << "nothing was applied";
}

// Chaos soak over a live graph: concurrent mutations and queries under
// probabilistic faults at every service site. Invariants: no hang
// (every future resolves), no lost request, nothing resolves kFailed,
// and the store's applied-batch count agrees with the service's
// mutation count (each admitted mutation lands exactly once or
// resolves shed/cancelled — never half-applied, never twice).
TEST(LiveServiceChaos, MutateQuerySoakLosesNothing) {
    if (!fault::compiled_in())
        GTEST_SKIP() << "built with SGE_FAULT_INJECTION=OFF";
    constexpr int kRequests = 800;
    constexpr vertex_t kN = 256;

    fault::load_from_env();
    for (const Site site :
         {Site::kServiceSubmit, Site::kServiceFlush, Site::kServiceWorker}) {
        if (!fault::armed_trigger(site))
            fault::arm(site, Trigger{.probability = 1e-3, .nth = 0});
    }

    VersionedGraphStore store(kN);
    ServiceOptions options = live_options(2);
    options.batch_window_seconds = 0.001;
    GraphService svc(store, options);

    SplitMix64 rng(99);
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        if (i % 8 == 0) {
            MutationBatch b;
            for (int k = 0; k < 4; ++k) {
                const auto u = static_cast<vertex_t>(rng.next() % kN);
                const auto v = static_cast<vertex_t>(rng.next() % kN);
                if (rng.next() % 5 == 0)
                    b.remove(u, v);
                else
                    b.insert(u, v);
            }
            futures.push_back(svc.submit_mutation(std::move(b)).result);
        } else {
            const double deadline = (rng.next() % 100 == 0) ? 1e-7 : 0.0;
            futures.push_back(
                svc.submit(static_cast<vertex_t>(rng.next() % kN), deadline)
                    .result);
        }
    }

    for (auto& f : futures) (void)f.get();  // must resolve: no hangs
    svc.stop();
    fault::disarm_all();

    const auto& c = svc.counters();
    EXPECT_EQ(c.submitted.load(), static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(c.resolved(), static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(c.failed.load(), 0u);
    EXPECT_EQ(store.counters().batches_applied.load(), c.mutations.load());
    EXPECT_EQ(store.version(), store.counters().snapshots_published.load())
        << "versions advance exactly one per publish";
}

}  // namespace
}  // namespace sge
