#pragma once

// Internal shared machinery for the BFS engines. Not part of the public
// API surface; include only from src/core/*.cpp and tests.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/bfs.hpp"

namespace sge::detail {

/// Shared per-level accumulation slot. Workers fetch_add their local
/// counters into it once per level; the engine copies the totals into
/// BfsResult::level_stats after the run.
struct LevelAccum {
    std::uint64_t frontier_size = 0;  // written by thread 0 only
    double seconds = 0.0;             // written by thread 0 only
    std::atomic<std::uint64_t> edges_scanned{0};
    std::atomic<std::uint64_t> bitmap_checks{0};
    std::atomic<std::uint64_t> atomic_ops{0};
    std::atomic<std::uint64_t> remote_tuples{0};

    LevelAccum() = default;
    // Copyable so a std::vector of slots can grow. Growth happens only
    // on thread 0 between barriers, when no worker touches the slots.
    LevelAccum(const LevelAccum& o)
        : frontier_size(o.frontier_size),
          seconds(o.seconds),
          edges_scanned(o.edges_scanned.load(std::memory_order_relaxed)),
          bitmap_checks(o.bitmap_checks.load(std::memory_order_relaxed)),
          atomic_ops(o.atomic_ops.load(std::memory_order_relaxed)),
          remote_tuples(o.remote_tuples.load(std::memory_order_relaxed)) {}
    LevelAccum& operator=(const LevelAccum&) = delete;
};

/// Worker-local counters, flushed into a LevelAccum once per level so
/// the hot loop touches no shared cache lines.
struct ThreadCounters {
    std::uint64_t edges_scanned = 0;
    std::uint64_t bitmap_checks = 0;
    std::uint64_t atomic_ops = 0;
    std::uint64_t remote_tuples = 0;

    void flush_into(LevelAccum& slot) noexcept {
        slot.edges_scanned.fetch_add(edges_scanned, std::memory_order_relaxed);
        slot.bitmap_checks.fetch_add(bitmap_checks, std::memory_order_relaxed);
        slot.atomic_ops.fetch_add(atomic_ops, std::memory_order_relaxed);
        slot.remote_tuples.fetch_add(remote_tuples, std::memory_order_relaxed);
        *this = ThreadCounters{};
    }
};

inline void check_root(const CsrGraph& g, vertex_t root) {
    if (root >= g.num_vertices())
        throw std::out_of_range("bfs: root vertex out of range");
}

/// Copies accumulated per-level slots into the result (dropping the
/// trailing slot engines pre-create for a level that never ran).
inline void copy_level_stats(BfsResult& result,
                             const std::vector<LevelAccum>& slots,
                             std::uint32_t levels_run) {
    result.level_stats.reserve(levels_run);
    for (std::uint32_t d = 0; d < levels_run && d < slots.size(); ++d) {
        const LevelAccum& a = slots[d];
        result.level_stats.push_back(BfsLevelStats{
            a.frontier_size,
            a.edges_scanned.load(std::memory_order_relaxed),
            a.bitmap_checks.load(std::memory_order_relaxed),
            a.atomic_ops.load(std::memory_order_relaxed),
            a.remote_tuples.load(std::memory_order_relaxed),
            a.seconds,
        });
    }
}

/// Splits [0, n) into `parts` near-equal chunks; returns chunk `index`.
inline std::pair<std::size_t, std::size_t> split_range(std::size_t n, int parts,
                                                       int index) noexcept {
    const std::size_t base = n / static_cast<std::size_t>(parts);
    const std::size_t extra = n % static_cast<std::size_t>(parts);
    const auto i = static_cast<std::size_t>(index);
    const std::size_t begin = i * base + (i < extra ? i : extra);
    const std::size_t size = base + (i < extra ? 1 : 0);
    return {begin, begin + size};
}

}  // namespace sge::detail
