// Ablation bench: the direction-optimizing extension engine vs the
// paper's Algorithm 2/3 across workload families.
//
// The hybrid engine's win is algorithmic, not architectural — it
// *examines fewer edges* on low-diameter graphs — so unlike the
// thread-scaling figures it reproduces faithfully even on one CPU.

#include <cstdio>

#include "bench_util.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Ablation: direction-optimizing BFS vs the paper's engines",
           "extension (Beamer et al. SC'12 heuristics)");

    const std::uint64_t n = scaled(1 << 16);

    struct Workload {
        const char* label;
        CsrGraph graph;
    };
    Workload workloads[] = {
        {"uniform arity 8", uniform_graph(n, 8 * n)},
        {"uniform arity 32", uniform_graph(n, 32 * n)},
        {"rmat arity 16", rmat_graph(n, 16 * n)},
    };

    Table table({"workload", "bitmap rate", "hybrid rate", "speedup",
                 "edges examined (bitmap)", "edges examined (hybrid)"});
    for (Workload& w : workloads) {
        BfsOptions bitmap;
        bitmap.engine = BfsEngine::kBitmap;
        bitmap.threads = 4;
        bitmap.topology = Topology::emulate(1, 4, 1);
        bitmap.collect_stats = true;

        BfsOptions hybrid = bitmap;
        hybrid.engine = BfsEngine::kHybrid;

        const double bitmap_rate = bfs_rate(w.graph, bitmap);
        const double hybrid_rate = bfs_rate(w.graph, hybrid);

        const auto scanned = [&](const BfsOptions& o) {
            const BfsResult r = bfs(w.graph, 0, o);
            std::uint64_t total = 0;
            for (const auto& s : r.level_stats) total += s.edges_scanned;
            return total;
        };

        table.add_row({w.label, fmt("%.1f ME/s", bitmap_rate / 1e6),
                       fmt("%.1f ME/s", hybrid_rate / 1e6),
                       fmt("%.2fx", hybrid_rate / bitmap_rate),
                       fmt_u64(scanned(bitmap)), fmt_u64(scanned(hybrid))});
    }
    table.print();

    std::printf(
        "\nexpected shape: on dense low-diameter graphs the hybrid engine "
        "examines a\nfraction of the edges and its rate (computed on the "
        "comparable sum-of-degrees\nconvention) rises accordingly; "
        "high-diameter or sparse graphs show parity.\n");
    return 0;
}
