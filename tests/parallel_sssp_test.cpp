#include <gtest/gtest.h>

#include <tuple>

#include "analytics/parallel_sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/small_world.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

void expect_distances_match(const SsspResult& expected, const SsspResult& actual) {
    ASSERT_EQ(expected.distance.size(), actual.distance.size());
    for (vertex_t v = 0; v < expected.distance.size(); ++v)
        ASSERT_EQ(expected.distance[v], actual.distance[v]) << "vertex " << v;
    EXPECT_EQ(expected.vertices_settled, actual.vertices_settled);
}

void expect_valid_tree(const WeightedCsrGraph& g, vertex_t source,
                       const SsspResult& r) {
    EXPECT_EQ(r.parent[source], source);
    EXPECT_EQ(r.distance[source], 0u);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        if (v == source) continue;
        if (r.distance[v] == kInfiniteDistance) {
            ASSERT_EQ(r.parent[v], kInvalidVertex) << v;
            continue;
        }
        const vertex_t p = r.parent[v];
        ASSERT_NE(p, kInvalidVertex) << v;
        // The tree edge must realise the distance.
        const auto adj = g.neighbors(p);
        const auto w = g.weights(p);
        bool found = false;
        for (std::size_t e = 0; e < adj.size(); ++e)
            if (adj[e] == v && r.distance[p] + w[e] == r.distance[v])
                found = true;
        ASSERT_TRUE(found) << "tree edge (" << p << ", " << v << ")";
    }
}

// Matrix: (threads, sockets, delta) against the Dijkstra oracle.
class ParallelSsspMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, weight_t>> {};

TEST_P(ParallelSsspMatrix, MatchesDijkstraOnUniform) {
    const auto [threads, sockets, delta] = GetParam();
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 6;
    params.seed = 5;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_uniform(params)), 1, 40, 11);

    const SsspResult expected = dijkstra(g, 7);

    ParallelSsspOptions opts;
    opts.threads = threads;
    opts.topology = Topology::emulate(sockets, std::max(threads / sockets, 1), 1);
    opts.delta = delta;
    const SsspResult actual = parallel_delta_stepping(g, 7, opts);
    expect_distances_match(expected, actual);
    expect_valid_tree(g, 7, actual);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelSsspMatrix,
    ::testing::Values(std::make_tuple(1, 1, weight_t{0}),
                      std::make_tuple(2, 1, weight_t{0}),
                      std::make_tuple(4, 2, weight_t{0}),
                      std::make_tuple(8, 4, weight_t{0}),
                      std::make_tuple(4, 1, weight_t{1}),
                      std::make_tuple(4, 1, weight_t{5}),
                      std::make_tuple(4, 1, weight_t{1000})),
    [](const auto& info) {
        return "t" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(std::get<2>(info.param));
    });

TEST(ParallelSssp, RmatHeavyTail) {
    RmatParams params;
    params.scale = 12;
    params.num_edges = 1 << 15;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_rmat(params)), 1, 200, 3);

    ParallelSsspOptions opts;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    expect_distances_match(dijkstra(g, 0), parallel_delta_stepping(g, 0, opts));
}

TEST(ParallelSssp, SmallWorldWithUnitWeights) {
    SmallWorldParams params;
    params.num_vertices = 4000;
    params.mean_degree = 6;
    params.rewire_probability = 0.1;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_small_world(params)), 1, 1, 2);

    ParallelSsspOptions opts;
    opts.threads = 3;
    opts.topology = Topology::emulate(1, 3, 1);
    const SsspResult actual = parallel_delta_stepping(g, 100, opts);
    expect_distances_match(dijkstra(g, 100), actual);
}

TEST(ParallelSssp, DisconnectedGraph) {
    const WeightedCsrGraph g =
        with_random_weights(test::two_cliques(5), 1, 9, 4);
    ParallelSsspOptions opts;
    opts.threads = 2;
    opts.topology = Topology::emulate(1, 2, 1);
    const SsspResult r = parallel_delta_stepping(g, 0, opts);
    EXPECT_EQ(r.vertices_settled, 5u);
    for (vertex_t v = 5; v < 10; ++v)
        EXPECT_EQ(r.distance[v], kInfiniteDistance);
}

TEST(ParallelSssp, SingleVertex) {
    CsrGraph g = csr_from_edges(EdgeList(1));
    const WeightedCsrGraph wg(std::move(g), AlignedBuffer<weight_t>(0));
    const SsspResult r = parallel_delta_stepping(wg, 0);
    EXPECT_EQ(r.distance[0], 0u);
    EXPECT_EQ(r.parent[0], 0u);
}

TEST(ParallelSssp, OutOfRangeSourceThrows) {
    const WeightedCsrGraph g =
        with_random_weights(test::path_graph(4), 1, 3, 1);
    EXPECT_THROW(parallel_delta_stepping(g, 4), std::out_of_range);
}

TEST(ParallelSssp, RepeatedRunsDeterministicDistances) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 5;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_uniform(params)), 1, 30, 6);
    ParallelSsspOptions opts;
    opts.threads = 6;
    opts.topology = Topology::emulate(3, 2, 1);
    const SsspResult first = parallel_delta_stepping(g, 1, opts);
    for (int i = 0; i < 3; ++i)
        expect_distances_match(first, parallel_delta_stepping(g, 1, opts));
}

}  // namespace
}  // namespace sge
