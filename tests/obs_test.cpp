// Observability subsystem tests: exact counter accounting on a
// hand-built graph across every engine, JSON writer correctness, and
// Chrome trace export well-formedness.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "dist/dist_bfs.hpp"
#include "graph/builder.hpp"
#include "runtime/obs.hpp"
#include "test_util.hpp"

namespace sge::test {
namespace {

// ---------------------------------------------------------------------
// A minimal JSON well-formedness checker (recursive descent). The point
// is to prove the exporters emit *parseable* JSON — commas, nesting,
// string escapes — without depending on an external parser.
// ---------------------------------------------------------------------

class JsonChecker {
  public:
    explicit JsonChecker(const std::string& text)
        : p_(text.data()), end_(text.data() + text.size()) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return p_ == end_;  // no trailing garbage
    }

  private:
    bool value() {
        if (p_ == end_) return false;
        switch (*p_) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++p_;  // '{'
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (p_ == end_ || *p_++ != ':') return false;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == ',') { ++p_; continue; }
            if (*p_ == '}') { ++p_; return true; }
            return false;
        }
    }

    bool array() {
        ++p_;  // '['
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == ',') { ++p_; continue; }
            if (*p_ == ']') { ++p_; return true; }
            return false;
        }
    }

    bool string() {
        if (p_ == end_ || *p_ != '"') return false;
        ++p_;
        while (p_ != end_) {
            const char c = *p_++;
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c == '\\') {
                if (p_ == end_) return false;
                const char e = *p_++;
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (p_ == end_ || !std::isxdigit(
                                static_cast<unsigned char>(*p_)))
                            return false;
                        ++p_;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
        }
        return false;
    }

    bool number() {
        const char* start = p_;
        if (p_ != end_ && *p_ == '-') ++p_;
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-'))
            ++p_;
        return p_ != start;
    }

    bool literal(const char* word) {
        for (const char* w = word; *w; ++w) {
            if (p_ == end_ || *p_ != *w) return false;
            ++p_;
        }
        return true;
    }

    void skip_ws() {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    const char* p_;
    const char* end_;
};

/// The hand-built 8-vertex fixture: a connected diamond-chain whose
/// exact arc count (18) and structure every counter test relies on.
///
///     0 - 1        4 - 5
///     |   |  3 --- |   |
///     2 --+        6 - 7
CsrGraph eight_vertex_graph() {
    EdgeList edges(8);
    edges.add(0, 1);
    edges.add(0, 2);
    edges.add(1, 3);
    edges.add(2, 3);
    edges.add(3, 4);
    edges.add(4, 5);
    edges.add(4, 6);
    edges.add(5, 7);
    edges.add(6, 7);
    return csr_from_edges(edges);  // symmetrized: 18 arcs
}

struct Totals {
    std::uint64_t frontier = 0;
    std::uint64_t edges = 0;
    std::uint64_t checks = 0;
    std::uint64_t atomics = 0;
    std::uint64_t skips = 0;
    std::uint64_t wins = 0;
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t occupancy = 0;
    std::uint64_t barrier_ns = 0;
};

Totals sum_levels(const std::vector<BfsLevelStats>& levels) {
    Totals t;
    for (const BfsLevelStats& s : levels) {
        t.frontier += s.frontier_size;
        t.edges += s.edges_scanned;
        t.checks += s.bitmap_checks;
        t.atomics += s.atomic_ops;
        t.skips += s.bitmap_skips;
        t.wins += s.atomic_wins;
        t.pushed += s.batches_pushed;
        t.popped += s.batches_popped;
        t.barrier_ns += s.barrier_wait_ns;
        for (std::size_t b = 0; b < kBatchOccupancyBuckets; ++b)
            t.occupancy += s.batch_occupancy[b];
    }
    return t;
}

/// Cross-engine counter invariants on the 8-vertex fixture.
void check_invariants(const BfsResult& r, const CsrGraph& g,
                      bool engine_has_atomics) {
    const std::uint64_t n = g.num_vertices();
    ASSERT_EQ(r.vertices_visited, n);
    ASSERT_FALSE(r.level_stats.empty());
    const Totals t = sum_levels(r.level_stats);

    // Every vertex is expanded in exactly one frontier.
    EXPECT_EQ(t.frontier, n);
    // Every arc is scanned exactly once (each endpoint expands once).
    EXPECT_EQ(t.edges, g.num_edges());

    if (obs::compiled_in()) {
        // Every non-root vertex is claimed exactly once, whatever the
        // claiming mechanism (atomic or plain).
        EXPECT_EQ(t.wins, n - 1);
        if (engine_has_atomics) {
            EXPECT_LE(t.wins, t.atomics);
        } else {
            EXPECT_EQ(t.atomics, 0u);
        }
        // The occupancy histogram tallies exactly the pushed batches.
        EXPECT_EQ(t.occupancy, t.pushed);
    } else {
        // Compiled out: the extended counters must read zero.
        EXPECT_EQ(t.wins, 0u);
        EXPECT_EQ(t.skips, 0u);
        EXPECT_EQ(t.pushed, 0u);
        EXPECT_EQ(t.barrier_ns, 0u);
    }
}

BfsOptions engine_options(BfsEngine engine, int threads) {
    BfsOptions options;
    options.engine = engine;
    options.threads = threads;
    // Two emulated sockets so the multisocket engine actually exercises
    // its channels on this 1-socket host.
    options.topology = Topology::emulate(2, 2, 1);
    options.collect_stats = true;
    return options;
}

// ---------------------------------------------------------------------
// Exact counts per engine.
// ---------------------------------------------------------------------

TEST(ObsCounters, SerialExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kSerial, 1));
    check_invariants(r, g, /*engine_has_atomics=*/false);
    if (obs::compiled_in()) {
        // Serial: every adjacency entry is either a fresh claim or an
        // already-visited skip.
        const Totals t = sum_levels(r.level_stats);
        EXPECT_EQ(t.skips + t.wins, t.checks);
    }
}

TEST(ObsCounters, NaiveExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kNaive, 4));
    check_invariants(r, g, /*engine_has_atomics=*/true);
    // Algorithm 1 has no cheap pre-test: every check escalates.
    const Totals t = sum_levels(r.level_stats);
    EXPECT_EQ(t.atomics, t.checks);
    EXPECT_EQ(t.skips, 0u);
}

TEST(ObsCounters, BitmapExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kBitmap, 4));
    check_invariants(r, g, /*engine_has_atomics=*/true);
    if (obs::compiled_in()) {
        // Double check: every bitmap query either filters (skip) or
        // escalates to the atomic — the Figure 4 identity.
        const Totals t = sum_levels(r.level_stats);
        EXPECT_EQ(t.skips + t.atomics, t.checks);
    }
}

TEST(ObsCounters, BitmapNoDoubleCheckHasNoSkips) {
    const CsrGraph g = eight_vertex_graph();
    BfsOptions options = engine_options(BfsEngine::kBitmap, 4);
    options.bitmap_double_check = false;
    const BfsResult r = bfs(g, 0, options);
    check_invariants(r, g, /*engine_has_atomics=*/true);
    const Totals t = sum_levels(r.level_stats);
    EXPECT_EQ(t.skips, 0u);
    EXPECT_EQ(t.atomics, t.checks);
}

TEST(ObsCounters, MultisocketExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r =
        bfs(g, 0, engine_options(BfsEngine::kMultiSocket, 4));
    check_invariants(r, g, /*engine_has_atomics=*/true);
    const Totals t = sum_levels(r.level_stats);
    std::uint64_t remote = 0;
    for (const BfsLevelStats& s : r.level_stats) remote += s.remote_tuples;
    // The 3-4 bridge crosses the two-socket partition boundary, so at
    // least one tuple must travel through a channel...
    EXPECT_GT(remote, 0u);
    if (obs::compiled_in()) {
        // ...and shipped tuples arrive in counted batches on both ends.
        EXPECT_GT(t.pushed, 0u);
        EXPECT_GT(t.popped, 0u);
    }
}

TEST(ObsCounters, HybridExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kHybrid, 4));
    const std::uint64_t n = g.num_vertices();
    ASSERT_EQ(r.vertices_visited, n);
    ASSERT_FALSE(r.level_stats.empty());
    const Totals t = sum_levels(r.level_stats);
    EXPECT_EQ(t.frontier, n);
    if (obs::compiled_in()) {
        // The wins invariant holds even across direction switches.
        EXPECT_EQ(t.wins, n - 1);
        EXPECT_LE(t.wins, t.atomics);
    }
}

TEST(ObsCounters, DistributedExactCounts) {
    const CsrGraph g = eight_vertex_graph();
    DistBfsOptions options;
    options.ranks = 3;
    options.collect_stats = true;
    const BfsResult r = distributed_bfs(g, 0, options);
    const std::uint64_t n = g.num_vertices();
    ASSERT_EQ(r.vertices_visited, n);
    const Totals t = sum_levels(r.level_stats);
    EXPECT_EQ(t.frontier, n);
    EXPECT_EQ(t.edges, g.num_edges());
    EXPECT_EQ(t.atomics, 0u);  // no shared memory, no atomics
    if (obs::compiled_in()) {
        EXPECT_EQ(t.wins, n - 1);
        EXPECT_GT(t.pushed, 0u);
        EXPECT_EQ(t.occupancy, t.pushed);
    }
}

TEST(ObsCounters, ParallelEnginesRecordBarrierWait) {
    if (!obs::compiled_in()) GTEST_SKIP() << "SGE_OBS compiled out";
    // Use a larger graph so several levels run: with >= 2 threads and
    // two barriers per level some worker always waits a measurable time.
    const CsrGraph g = path_graph(256);
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kBitmap, 4));
    EXPECT_GT(sum_levels(r.level_stats).barrier_ns, 0u);
}

TEST(ObsCounters, ThreadSpansCoverEveryLevel) {
    if (!obs::compiled_in()) GTEST_SKIP() << "SGE_OBS compiled out";
    const CsrGraph g = eight_vertex_graph();
    const int threads = 4;
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kBitmap, threads));
    // One span per thread per level, each well-ordered.
    ASSERT_EQ(r.thread_spans.size(),
              static_cast<std::size_t>(threads) * r.num_levels);
    for (const BfsThreadSpan& s : r.thread_spans) {
        EXPECT_LT(s.thread, threads);
        EXPECT_LT(s.level, r.num_levels);
        EXPECT_LE(s.start_ns, s.end_ns);
    }
}

TEST(ObsCounters, StatsOffCollectsNothing) {
    const CsrGraph g = eight_vertex_graph();
    BfsOptions options = engine_options(BfsEngine::kBitmap, 4);
    options.collect_stats = false;
    const BfsResult r = bfs(g, 0, options);
    EXPECT_TRUE(r.level_stats.empty());
    EXPECT_TRUE(r.thread_spans.empty());
}

TEST(ObsCounters, MsBfsLevelStats) {
    const CsrGraph g = eight_vertex_graph();
    std::vector<BfsLevelStats> levels;
    MsBfsOptions options;
    options.threads = 2;
    options.collect_stats = true;
    options.level_stats = &levels;
    const std::vector<vertex_t> sources{0, 7};
    std::uint32_t max_level = 0;
    const std::uint32_t ran = multi_source_bfs(
        g, sources,
        [&](int, level_t level, vertex_t, std::uint64_t) {
            if (level > max_level) max_level = level;
        },
        options);
    ASSERT_EQ(levels.size(), ran);
    EXPECT_EQ(levels[0].frontier_size, sources.size());
    std::uint64_t edges = 0;
    for (const BfsLevelStats& s : levels) edges += s.edges_scanned;
    EXPECT_GT(edges, 0u);
    if (obs::compiled_in()) {
        std::uint64_t wins = 0;
        for (const BfsLevelStats& s : levels) wins += s.atomic_wins;
        EXPECT_GT(wins, 0u);
    }
}

// ---------------------------------------------------------------------
// Occupancy bucket math.
// ---------------------------------------------------------------------

TEST(ObsBuckets, BatchOccupancyBucket) {
    EXPECT_EQ(batch_occupancy_bucket(64, 64), kBatchOccupancyBuckets - 1);
    EXPECT_EQ(batch_occupancy_bucket(1, 64), 0u);
    EXPECT_EQ(batch_occupancy_bucket(8, 64), 0u);    // 12.5% full
    EXPECT_EQ(batch_occupancy_bucket(9, 64), 1u);    // just over 1/8
    EXPECT_EQ(batch_occupancy_bucket(33, 64), 4u);   // just over half
    EXPECT_EQ(batch_occupancy_bucket(0, 64), 0u);    // degenerate
    EXPECT_EQ(batch_occupancy_bucket(64, 0), 0u);    // degenerate
    EXPECT_EQ(batch_occupancy_bucket(100, 64),       // clamped
              kBatchOccupancyBuckets - 1);
    // Bucketing is by (size-1)/capacity, so a lone tuple is always
    // bucket 0 even when it fills the batch.
    EXPECT_EQ(batch_occupancy_bucket(1, 1), 0u);
}

// ---------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------

TEST(ObsJson, WriterProducesExpectedText) {
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("name", "bfs \"fast\"\n");
    w.field("count", std::uint64_t{42});
    w.field("delta", std::int64_t{-7});
    w.field("ratio", 0.5);
    w.field("ok", true);
    w.key("items");
    w.begin_array();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.end_array();
    w.key("nested");
    w.begin_object();
    w.end_object();
    w.end_object();
    EXPECT_EQ(out.str(),
              "{\"name\":\"bfs \\\"fast\\\"\\n\",\"count\":42,\"delta\":-7,"
              "\"ratio\":0.5,\"ok\":true,\"items\":[1,2],\"nested\":{}}");
    EXPECT_TRUE(JsonChecker(out.str()).valid());
}

TEST(ObsJson, NonFiniteDoublesBecomeNull) {
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.end_array();
    EXPECT_EQ(out.str(), "[null,null]");
}

TEST(ObsJson, EscapeControlCharacters) {
    EXPECT_EQ(obs::json_escape("a\tb"), "a\\tb");
    EXPECT_EQ(obs::json_escape("a\x01z"), "a\\u0001z");
    EXPECT_EQ(obs::json_escape("slash\\quote\""), "slash\\\\quote\\\"");
}

// ---------------------------------------------------------------------
// Chrome trace export.
// ---------------------------------------------------------------------

std::string trace_to_string(const obs::ChromeTrace& trace) {
    std::ostringstream out;
    trace.write(out);
    return out.str();
}

TEST(ObsTrace, HandBuiltTraceIsWellFormed) {
    obs::ChromeTrace trace;
    trace.set_process_name("test");
    trace.set_thread_name(0, "worker 0");
    trace.add_span(0, "level 0", 1000, 2500, {{"level", 0}});
    trace.add_counter("frontier", 1000, {{"vertices", 12}});
    const std::string text = trace_to_string(trace);
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ObsTrace, BfsTraceFromInstrumentedRun) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kBitmap, 4));
    const obs::ChromeTrace trace = make_bfs_trace(r, "bfs-test");
    if (obs::compiled_in()) {
        EXPECT_EQ(trace.span_count(), r.thread_spans.size());
    } else {
        // Fallback: one synthesized span per level.
        EXPECT_EQ(trace.span_count(), r.level_stats.size());
    }
    EXPECT_TRUE(JsonChecker(trace_to_string(trace)).valid());
}

TEST(ObsTrace, SerialRunSynthesizesLevelTrack) {
    const CsrGraph g = eight_vertex_graph();
    const BfsResult r = bfs(g, 0, engine_options(BfsEngine::kSerial, 1));
    ASSERT_TRUE(r.thread_spans.empty());
    const obs::ChromeTrace trace = make_bfs_trace(r);
    EXPECT_EQ(trace.span_count(), r.level_stats.size());
    EXPECT_TRUE(JsonChecker(trace_to_string(trace)).valid());
}

TEST(ObsTrace, UninstrumentedRunYieldsEmptyTrace) {
    const CsrGraph g = eight_vertex_graph();
    BfsOptions options = engine_options(BfsEngine::kBitmap, 2);
    options.collect_stats = false;
    const BfsResult r = bfs(g, 0, options);
    const obs::ChromeTrace trace = make_bfs_trace(r);
    EXPECT_EQ(trace.span_count(), 0u);
    EXPECT_TRUE(JsonChecker(trace_to_string(trace)).valid());
}

}  // namespace
}  // namespace sge::test
